#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_util.h"
#include "core/distinct.h"
#include "core/scan.h"
#include "obs/metrics.h"

namespace distinct {
namespace obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = Enabled();
    SetEnabled(true);
    Tracer::Global().Reset();
  }
  void TearDown() override { SetEnabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

/// Structure of a span tree with timings stripped: one "name(parent,thread)"
/// token per span in creation order.
std::vector<std::string> Structure(const std::vector<SpanRecord>& spans) {
  std::vector<std::string> tokens;
  tokens.reserve(spans.size());
  for (const SpanRecord& span : spans) {
    tokens.push_back(span.name + "(" + std::to_string(span.parent) + "," +
                     std::to_string(span.thread) + ")");
  }
  return tokens;
}

TEST_F(TraceTest, NestedSpansRecordParentAndDuration) {
  {
    DISTINCT_TRACE_SPAN("outer");
    { DISTINCT_TRACE_SPAN("inner"); }
    { DISTINCT_TRACE_SPAN("sibling"); }
  }
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].parent, 0);
  for (const SpanRecord& span : spans) {
    EXPECT_GE(span.duration_nanos, 0) << span.name;
    EXPECT_GE(span.start_nanos, 0) << span.name;
    EXPECT_EQ(span.thread, 0) << span.name;
  }
  // Children are contained in the parent's window.
  EXPECT_LE(spans[0].start_nanos, spans[1].start_nanos);
  EXPECT_LE(spans[1].start_nanos + spans[1].duration_nanos,
            spans[0].start_nanos + spans[0].duration_nanos);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  SetEnabled(false);
  { DISTINCT_TRACE_SPAN("invisible"); }
  SetEnabled(true);
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
}

TEST_F(TraceTest, ResetDropsSpansOpenAcrossIt) {
  {
    DISTINCT_TRACE_SPAN("doomed");
    Tracer::Global().Reset();
    // The close after Reset must not touch the new run's span list.
  }
  { DISTINCT_TRACE_SPAN("fresh"); }
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "fresh");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_GE(spans[0].duration_nanos, 0);
}

/// Spans mark stage boundaries on the calling thread only, so the tree for
/// a fixed workload is identical whatever the engine's thread count — the
/// property that makes span-structure assertions safe in CI and run reports
/// diffable across machines.
TEST_F(TraceTest, SpanTreeDeterministicAcrossEngineThreadCounts) {
  const Database db = testing_util::MakeMiniDblp();
  std::vector<std::string> baseline;
  for (const int threads : {1, 2, 8}) {
    Tracer::Global().Reset();

    DistinctConfig config;
    config.supervised = false;  // mini world: unsupervised uniform weights
    config.num_threads = threads;
    auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    ScanOptions scan;
    scan.min_refs = 2;
    auto groups = ScanNameGroups(*engine, scan);
    ASSERT_TRUE(groups.ok());
    auto stats = ResolveAllNames(*engine, *groups);
    ASSERT_TRUE(stats.ok());

    const std::vector<std::string> structure =
        Structure(Tracer::Global().Snapshot());
    EXPECT_FALSE(structure.empty());
    if (baseline.empty()) {
      baseline = structure;
    } else {
      EXPECT_EQ(structure, baseline) << "threads=" << threads;
    }
  }
}

TEST_F(TraceTest, ParallelBulkScanRecordsOneSpanPerRun) {
  const Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.supervised = false;
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ScanOptions scan;
  scan.min_refs = 2;
  auto groups = ScanNameGroups(*engine, scan);
  ASSERT_TRUE(groups.ok());

  std::vector<std::string> baseline;
  for (const int threads : {2, 8}) {
    Tracer::Global().Reset();
    auto stats = ResolveAllNamesParallel(*engine, *groups, threads);
    ASSERT_TRUE(stats.ok());
    // Worker lambdas record only counters/histograms; the whole fan-out is
    // one span on the calling thread, at any worker count.
    const std::vector<std::string> structure =
        Structure(Tracer::Global().Snapshot());
    ASSERT_EQ(structure.size(), 1u);
    EXPECT_EQ(structure[0], "bulk_resolve_parallel(-1,0)");
    if (baseline.empty()) {
      baseline = structure;
    } else {
      EXPECT_EQ(structure, baseline) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace obs
}  // namespace distinct
