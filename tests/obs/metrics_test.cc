#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace distinct {
namespace obs {
namespace {

/// Enables observability for one test and restores the prior state after,
/// so suites sharing the binary don't leak the switch into each other.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = Enabled();
    SetEnabled(true);
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override { SetEnabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

using MetricsTest = ObsTest;

TEST_F(MetricsTest, CounterSumsExactlyAcrossThreads) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  constexpr int kThreads = 8;
  constexpr int64_t kAddsPerThread = 100000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int64_t i = 0; i < kAddsPerThread; ++i) {
        counter->Add(1);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // Sharded adds must lose nothing: the merged value is the exact sum.
  EXPECT_EQ(counter->Value(), kThreads * kAddsPerThread);
}

TEST_F(MetricsTest, HistogramSumsExactlyAcrossThreads) {
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("test.concurrent_histogram");
  constexpr int kThreads = 8;
  constexpr int64_t kRecordsPerThread = 20000;
  constexpr int64_t kSample = 1500;  // bucket 10: [1024, 2048)

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (int64_t i = 0; i < kRecordsPerThread; ++i) {
        histogram->Record(kSample);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  const HistogramSnapshot snapshot = histogram->Snapshot();
  EXPECT_EQ(snapshot.count, kThreads * kRecordsPerThread);
  EXPECT_EQ(snapshot.sum, kThreads * kRecordsPerThread * kSample);
  EXPECT_EQ(snapshot.buckets[10], kThreads * kRecordsPerThread);
  EXPECT_DOUBLE_EQ(snapshot.MeanNanos(), static_cast<double>(kSample));
}

TEST_F(MetricsTest, HistogramBucketsAndPercentiles) {
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("test.percentiles");
  // 90 fast samples in [2^4, 2^5), 10 slow ones in [2^20, 2^21).
  for (int i = 0; i < 90; ++i) {
    histogram->Record(20);
  }
  for (int i = 0; i < 10; ++i) {
    histogram->Record(1 << 20);
  }
  const HistogramSnapshot snapshot = histogram->Snapshot();
  EXPECT_EQ(snapshot.count, 100);
  EXPECT_EQ(snapshot.buckets[4], 90);
  EXPECT_EQ(snapshot.buckets[20], 10);
  EXPECT_EQ(snapshot.PercentileUpperBoundNanos(0.5), int64_t{1} << 5);
  EXPECT_EQ(snapshot.PercentileUpperBoundNanos(0.99), int64_t{1} << 21);
}

TEST_F(MetricsTest, HistogramClampsExtremes) {
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("test.extremes");
  histogram->Record(0);
  histogram->Record(-5);  // negative samples clamp into bucket 0
  histogram->Record(int64_t{1} << 62);
  const HistogramSnapshot snapshot = histogram->Snapshot();
  EXPECT_EQ(snapshot.count, 3);
  EXPECT_EQ(snapshot.buckets[0], 2);
  EXPECT_EQ(snapshot.buckets[HistogramSnapshot::kNumBuckets - 1], 1);
}

TEST_F(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.stable");
  EXPECT_EQ(counter, registry.GetCounter("test.stable"));
  counter->Add(7);
  EXPECT_EQ(counter->Value(), 7);

  // Reset zeroes the value but must keep the registration (cached call-site
  // pointers stay valid).
  registry.Reset();
  EXPECT_EQ(counter, registry.GetCounter("test.stable"));
  EXPECT_EQ(counter->Value(), 0);
  counter->Add(3);
  EXPECT_EQ(registry.Snapshot().CounterValue("test.stable"), 3);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  Gauge* gauge = MetricsRegistry::Global().GetGauge("test.gauge");
  gauge->Set(42);
  EXPECT_EQ(gauge->Value(), 42);
  gauge->Add(-2);
  EXPECT_EQ(gauge->Value(), 40);
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().GaugeValue("test.gauge"),
            40);
}

TEST_F(MetricsTest, SnapshotSortedAndQueryable) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.b")->Add(2);
  registry.GetCounter("test.a")->Add(1);
  registry.GetHistogram("test.h")->Record(100);
  const MetricsSnapshot snapshot = registry.Snapshot();

  // std::map iteration gives names in sorted order.
  std::string previous;
  for (const auto& [name, value] : snapshot.counters) {
    EXPECT_LT(previous, name);
    previous = name;
  }
  EXPECT_EQ(snapshot.CounterValue("test.a"), 1);
  EXPECT_EQ(snapshot.CounterValue("test.missing"), 0);
  ASSERT_NE(snapshot.FindHistogram("test.h"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("test.h")->count, 1);
  EXPECT_EQ(snapshot.FindHistogram("test.missing"), nullptr);
}

TEST_F(MetricsTest, MacrosRecordWhenEnabled) {
  DISTINCT_COUNTER_ADD("test.macro_counter", 5);
  DISTINCT_GAUGE_SET("test.macro_gauge", 11);
  DISTINCT_HISTOGRAM_RECORD("test.macro_histogram", 256);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test.macro_counter"), 5);
  EXPECT_EQ(snapshot.GaugeValue("test.macro_gauge"), 11);
  ASSERT_NE(snapshot.FindHistogram("test.macro_histogram"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("test.macro_histogram")->count, 1);
}

TEST_F(MetricsTest, MacrosAreNoOpsWhenDisabled) {
  SetEnabled(false);
  DISTINCT_COUNTER_ADD("test.disabled_counter", 5);
  SetEnabled(true);
  // The disabled macro must not even register the metric.
  EXPECT_EQ(
      MetricsRegistry::Global().Snapshot().CounterValue(
          "test.disabled_counter"),
      0);
}

TEST_F(MetricsTest, ConcurrentRegistrationIsSafe) {
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen] {
      seen[static_cast<size_t>(t)] =
          MetricsRegistry::Global().GetCounter("test.racing_registration");
      seen[static_cast<size_t>(t)]->Add(1);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  EXPECT_EQ(seen[0]->Value(), kThreads);
}

}  // namespace
}  // namespace obs
}  // namespace distinct
