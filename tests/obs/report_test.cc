#include "obs/report.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace distinct {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — just enough to schema-check the
// run report without adding a dependency. Numbers are doubles; parse errors
// surface as nullptr from Parse().

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::unique_ptr<JsonValue> Parse() {
    auto value = std::make_unique<JsonValue>();
    if (!ParseValue(*value)) {
      return nullptr;
    }
    SkipSpace();
    return pos_ == text_.size() ? std::move(value) : nullptr;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue& out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return ParseString(out.string_value);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.bool_value = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    do {
      SkipSpace();
      std::string key;
      if (!ParseString(key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.object.emplace(std::move(key), std::move(value));
    } while (Consume(','));
    return Consume('}');
  }

  bool ParseArray(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    do {
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.array.push_back(std::move(value));
    } while (Consume(','));
    return Consume(']');
  }

  bool ParseString(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char escape = text_[pos_++];
        switch (escape) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            const int code =
                std::stoi(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            c = static_cast<char>(code);  // test JSON stays in ASCII
            break;
          }
          default: c = escape; break;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue& out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = Enabled();
    SetEnabled(true);
    MetricsRegistry::Global().Reset();
    Tracer::Global().Reset();
  }
  void TearDown() override { SetEnabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

/// Records a small, fully known workload.
void RecordFixture() {
  {
    DISTINCT_TRACE_SPAN("outer");
    { DISTINCT_TRACE_SPAN("inner"); }
  }
  // 1000 pairs in exactly 1 second of recorded fill time => 1000 pairs/sec.
  DISTINCT_COUNTER_ADD("sim.pairs_computed", 1000);
  DISTINCT_HISTOGRAM_RECORD("sim.pair_matrix_nanos", 1000000000);
  DISTINCT_GAUGE_SET("test.gauge", 3);
}

TEST_F(ReportTest, JsonHasSchemaVersionAndAllSections) {
  RecordFixture();
  const RunReport report = CollectRunReport("unit-test");
  const std::string json = RunReportToJson(report);

  JsonParser parser(json);
  auto root = parser.Parse();
  ASSERT_NE(root, nullptr) << json;
  ASSERT_EQ(root->kind, JsonValue::Kind::kObject);

  const JsonValue* version = root->Get("distinct_run_report");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number, RunReport::kSchemaVersion);

  const JsonValue* label = root->Get("label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->string_value, "unit-test");

  for (const char* key : {"stages", "spans", "histograms"}) {
    const JsonValue* section = root->Get(key);
    ASSERT_NE(section, nullptr) << key;
    EXPECT_EQ(section->kind, JsonValue::Kind::kArray) << key;
  }
  for (const char* key : {"counters", "gauges", "derived"}) {
    const JsonValue* section = root->Get(key);
    ASSERT_NE(section, nullptr) << key;
    EXPECT_EQ(section->kind, JsonValue::Kind::kObject) << key;
  }
}

TEST_F(ReportTest, JsonCarriesRecordedValuesAndDerivedRates) {
  RecordFixture();
  const std::string json = RunReportToJson(CollectRunReport("unit-test"));
  auto root = JsonParser(json).Parse();
  ASSERT_NE(root, nullptr) << json;

  const JsonValue* pairs =
      root->Get("counters")->Get("sim.pairs_computed");
  ASSERT_NE(pairs, nullptr);
  EXPECT_EQ(pairs->number, 1000.0);

  const JsonValue* gauge = root->Get("gauges")->Get("test.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->number, 3.0);

  // 1000 pairs over 1e9 summed fill nanoseconds -> 1000 pairs/sec.
  const JsonValue* rate =
      root->Get("derived")->Get("pair_matrix.pairs_per_sec");
  ASSERT_NE(rate, nullptr);
  EXPECT_NEAR(rate->number, 1000.0, 1e-6);

  // Spans: outer (root) then inner (child of 0).
  const JsonValue* spans = root->Get("spans");
  ASSERT_EQ(spans->array.size(), 2u);
  EXPECT_EQ(spans->array[0].Get("name")->string_value, "outer");
  EXPECT_EQ(spans->array[0].Get("parent")->number, -1.0);
  EXPECT_EQ(spans->array[1].Get("name")->string_value, "inner");
  EXPECT_EQ(spans->array[1].Get("parent")->number, 0.0);

  // Stages aggregate by root-to-span path.
  const JsonValue* stages = root->Get("stages");
  ASSERT_EQ(stages->array.size(), 2u);
  EXPECT_EQ(stages->array[0].Get("path")->string_value, "outer");
  EXPECT_EQ(stages->array[1].Get("path")->string_value, "outer/inner");
  EXPECT_EQ(stages->array[1].Get("calls")->number, 1.0);

  // Histograms carry count/sum and the bucket array.
  const JsonValue* histograms = root->Get("histograms");
  ASSERT_EQ(histograms->array.size(), 1u);
  const JsonValue& fill = histograms->array[0];
  EXPECT_EQ(fill.Get("name")->string_value, "sim.pair_matrix_nanos");
  EXPECT_EQ(fill.Get("count")->number, 1.0);
  EXPECT_EQ(fill.Get("sum_ns")->number, 1e9);
  ASSERT_NE(fill.Get("buckets"), nullptr);
  EXPECT_FALSE(fill.Get("buckets")->array.empty());
}

TEST_F(ReportTest, AttributesAppearInJsonAndTextSortedByKey) {
  SetRunAttribute("kernel_isa", "avx2");
  SetRunAttribute("build", "release");
  SetRunAttribute("kernel_isa", "scalar");  // last write wins

  const RunReport report = CollectRunReport("unit-test");
  ASSERT_EQ(report.attributes.size(), 2u);
  // std::map snapshot: key-sorted, deterministic across runs.
  EXPECT_EQ(report.attributes[0].first, "build");
  EXPECT_EQ(report.attributes[0].second, "release");
  EXPECT_EQ(report.attributes[1].first, "kernel_isa");
  EXPECT_EQ(report.attributes[1].second, "scalar");

  const std::string json = RunReportToJson(report);
  JsonParser parser(json);
  auto root = parser.Parse();
  ASSERT_NE(root, nullptr) << json;
  const JsonValue* attributes = root->Get("attributes");
  ASSERT_NE(attributes, nullptr);
  ASSERT_EQ(attributes->kind, JsonValue::Kind::kObject);
  const JsonValue* isa = attributes->Get("kernel_isa");
  ASSERT_NE(isa, nullptr);
  EXPECT_EQ(isa->string_value, "scalar");

  const std::string text = RunReportToText(report);
  EXPECT_NE(text.find("kernel_isa"), std::string::npos);
  EXPECT_NE(text.find("scalar"), std::string::npos);
}

TEST_F(ReportTest, JsonRoundTripsThroughAFile) {
  RecordFixture();
  const RunReport report = CollectRunReport("round-trip");
  const std::string path =
      ::testing::TempDir() + "/distinct_report_test.json";
  ASSERT_TRUE(WriteRunReportJson(report, path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), RunReportToJson(report));

  auto root = JsonParser(buffer.str()).Parse();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->Get("label")->string_value, "round-trip");
  std::remove(path.c_str());
}

TEST_F(ReportTest, TextReportMentionsEverySection) {
  RecordFixture();
  const std::string text = RunReportToText(CollectRunReport("unit-test"));
  EXPECT_NE(text.find("run report: unit-test"), std::string::npos);
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("inner"), std::string::npos);
  EXPECT_NE(text.find("sim.pairs_computed"), std::string::npos);
  EXPECT_NE(text.find("sim.pair_matrix_nanos"), std::string::npos);
  EXPECT_NE(text.find("pair_matrix.pairs_per_sec"), std::string::npos);
}

TEST_F(ReportTest, JsonWriterEscapesAndNests) {
  JsonWriter json;
  json.BeginObject();
  json.Key("quote\"backslash\\newline\n").Value("tab\there");
  json.Key("nested").BeginArray();
  json.Value(int64_t{-7});
  json.Value(true);
  json.Value(0.5);
  json.EndArray();
  json.EndObject();
  const std::string text = json.str();

  auto root = JsonParser(text).Parse();
  ASSERT_NE(root, nullptr) << text;
  const JsonValue* escaped = root->Get("quote\"backslash\\newline\n");
  ASSERT_NE(escaped, nullptr);
  EXPECT_EQ(escaped->string_value, "tab\there");
  const JsonValue* nested = root->Get("nested");
  ASSERT_EQ(nested->array.size(), 3u);
  EXPECT_EQ(nested->array[0].number, -7.0);
  EXPECT_TRUE(nested->array[1].bool_value);
  EXPECT_EQ(nested->array[2].number, 0.5);
}

}  // namespace
}  // namespace obs
}  // namespace distinct
