#include "obs/bench_compare.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace distinct {
namespace obs {
namespace {

BenchArtifact MakeArtifact(const std::string& name,
                           std::map<std::string, double> metrics) {
  BenchArtifact artifact;
  artifact.name = name;
  artifact.metrics = std::move(metrics);
  return artifact;
}

GateRule MakeRule(const std::string& bench, const std::string& metric,
                  GateRule::Direction direction, double threshold) {
  GateRule rule;
  rule.bench = bench;
  rule.metric = metric;
  rule.direction = direction;
  rule.threshold = threshold;
  return rule;
}

TEST(BenchArtifactTest, ParsesMetricsInfoAndBools) {
  auto artifact = ParseBenchArtifact(
      "{\"bench\":\"pair_kernel\",\"run_host\":\"ci-box\","
      "\"fused_speedup\":2.5,\"pairs\":1000,\"fused_exact\":true,"
      "\"nested\":{\"ignored\":1}}");
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_EQ(artifact->name, "pair_kernel");
  EXPECT_DOUBLE_EQ(artifact->metrics.at("fused_speedup"), 2.5);
  EXPECT_DOUBLE_EQ(artifact->metrics.at("pairs"), 1000.0);
  EXPECT_DOUBLE_EQ(artifact->metrics.at("fused_exact"), 1.0);  // bool -> 0/1
  EXPECT_EQ(artifact->info.at("run_host"), "ci-box");
  EXPECT_EQ(artifact->metrics.count("nested"), 0u);
  EXPECT_EQ(artifact->info.count("bench"), 0u);  // name, not an info key
}

TEST(BenchArtifactTest, RejectsMissingNameAndBadJson) {
  EXPECT_EQ(ParseBenchArtifact("{\"fused_speedup\":2.5}").status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(ParseBenchArtifact("[1,2]").status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(ParseBenchArtifact("{nope").status().code(),
            StatusCode::kDataLoss);
}

TEST(BenchArtifactTest, LoadFromMissingFileIsNotFound) {
  EXPECT_EQ(LoadBenchArtifact("/nonexistent/BENCH_x.json").status().code(),
            StatusCode::kNotFound);
}

TEST(GateRulesTest, ParsesRulesCommentsAndBlanks) {
  auto rules = ParseGateRules(
      "# comment line\n"
      "\n"
      "pair_kernel fused_speedup higher 0.5\n"
      "pair_kernel fused_exact equal 0   # inline comment\n"
      "scan wall_seconds lower 0.25\n");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 3u);
  EXPECT_EQ((*rules)[0].bench, "pair_kernel");
  EXPECT_EQ((*rules)[0].metric, "fused_speedup");
  EXPECT_EQ((*rules)[0].direction, GateRule::Direction::kHigherIsBetter);
  EXPECT_DOUBLE_EQ((*rules)[0].threshold, 0.5);
  EXPECT_EQ((*rules)[1].direction, GateRule::Direction::kEqual);
  EXPECT_DOUBLE_EQ((*rules)[1].threshold, 0.0);
  EXPECT_EQ((*rules)[2].direction, GateRule::Direction::kLowerIsBetter);
}

TEST(GateRulesTest, MalformedLinesNameTheLineNumber) {
  auto missing = ParseGateRules("pair_kernel fused_speedup higher\n");
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(missing.status().message().find("line 1"), std::string::npos);

  auto direction = ParseGateRules("\nscan wall sideways 0.5\n");
  EXPECT_EQ(direction.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(direction.status().message().find("line 2"), std::string::npos);

  EXPECT_EQ(ParseGateRules("scan wall lower -0.5\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseGateRules("scan wall lower 0.5 extra\n").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GateTest, HigherIsBetterToleratesThresholdAndFailsBeyond) {
  const std::map<std::string, BenchArtifact> baselines = {
      {"pair_kernel", MakeArtifact("pair_kernel", {{"speedup", 4.0}})}};
  const std::vector<GateRule> rules = {MakeRule(
      "pair_kernel", "speedup", GateRule::Direction::kHigherIsBetter, 0.5)};

  // 2.0 is exactly 50% below baseline: at the limit, still passing.
  std::map<std::string, BenchArtifact> currents = {
      {"pair_kernel", MakeArtifact("pair_kernel", {{"speedup", 2.0}})}};
  GateReport at_limit = EvaluateGate(rules, baselines, currents);
  EXPECT_TRUE(at_limit.ok());
  EXPECT_DOUBLE_EQ(at_limit.checks[0].relative_change, -0.5);

  // Improvement is never a violation, however large.
  currents["pair_kernel"].metrics["speedup"] = 40.0;
  EXPECT_TRUE(EvaluateGate(rules, baselines, currents).ok());

  currents["pair_kernel"].metrics["speedup"] = 1.9;
  GateReport beyond = EvaluateGate(rules, baselines, currents);
  EXPECT_FALSE(beyond.ok());
  EXPECT_EQ(beyond.failures, 1);
  EXPECT_EQ(beyond.checks[0].detail, "regression beyond threshold");
}

TEST(GateTest, LowerIsBetterFailsWhenCurrentGrows) {
  const std::map<std::string, BenchArtifact> baselines = {
      {"scan", MakeArtifact("scan", {{"wall_seconds", 10.0}})}};
  const std::vector<GateRule> rules = {MakeRule(
      "scan", "wall_seconds", GateRule::Direction::kLowerIsBetter, 0.2)};

  std::map<std::string, BenchArtifact> currents = {
      {"scan", MakeArtifact("scan", {{"wall_seconds", 12.0}})}};
  EXPECT_TRUE(EvaluateGate(rules, baselines, currents).ok());  // +20% = limit

  currents["scan"].metrics["wall_seconds"] = 12.5;
  EXPECT_FALSE(EvaluateGate(rules, baselines, currents).ok());

  currents["scan"].metrics["wall_seconds"] = 5.0;  // faster is fine
  EXPECT_TRUE(EvaluateGate(rules, baselines, currents).ok());
}

TEST(GateTest, EqualWithZeroThresholdDemandsExactness) {
  const std::map<std::string, BenchArtifact> baselines = {
      {"pair_kernel", MakeArtifact("pair_kernel", {{"fused_exact", 1.0}})}};
  const std::vector<GateRule> rules = {MakeRule(
      "pair_kernel", "fused_exact", GateRule::Direction::kEqual, 0.0)};

  std::map<std::string, BenchArtifact> currents = {
      {"pair_kernel", MakeArtifact("pair_kernel", {{"fused_exact", 1.0}})}};
  EXPECT_TRUE(EvaluateGate(rules, baselines, currents).ok());

  currents["pair_kernel"].metrics["fused_exact"] = 0.0;
  EXPECT_FALSE(EvaluateGate(rules, baselines, currents).ok());
}

TEST(GateTest, NearZeroBaselineGatesAbsoluteDeviation) {
  const std::map<std::string, BenchArtifact> baselines = {
      {"scan", MakeArtifact("scan", {{"max_error", 0.0}})}};
  const std::vector<GateRule> rules = {
      MakeRule("scan", "max_error", GateRule::Direction::kEqual, 1e-9)};

  std::map<std::string, BenchArtifact> currents = {
      {"scan", MakeArtifact("scan", {{"max_error", 5e-10}})}};
  EXPECT_TRUE(EvaluateGate(rules, baselines, currents).ok());

  currents["scan"].metrics["max_error"] = 1e-6;
  GateReport report = EvaluateGate(rules, baselines, currents);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.checks[0].detail, "absolute deviation from ~zero baseline");
}

TEST(GateTest, MissingArtifactOrMetricFailsTheRule) {
  const std::map<std::string, BenchArtifact> baselines = {
      {"scan", MakeArtifact("scan", {{"wall_seconds", 1.0}})}};
  const std::map<std::string, BenchArtifact> currents = {
      {"scan", MakeArtifact("scan", {{"other_metric", 1.0}})}};
  const std::vector<GateRule> rules = {
      MakeRule("ghost", "x", GateRule::Direction::kHigherIsBetter, 0.0),
      MakeRule("scan", "wall_seconds", GateRule::Direction::kLowerIsBetter,
               0.5),
  };
  GateReport report = EvaluateGate(rules, baselines, currents);
  EXPECT_EQ(report.failures, 2);
  EXPECT_EQ(report.checks[0].detail, "missing baseline artifact");
  EXPECT_EQ(report.checks[1].detail, "metric absent from current run");
}

TEST(GateTest, ReportTextListsEveryCheckAndProvenance) {
  std::map<std::string, BenchArtifact> baselines = {
      {"scan", MakeArtifact("scan", {{"wall_seconds", 10.0}})}};
  baselines["scan"].info["run_host"] = "baseline-box";
  std::map<std::string, BenchArtifact> currents = {
      {"scan", MakeArtifact("scan", {{"wall_seconds", 20.0}})}};
  currents["scan"].info["run_host"] = "pr-box";
  const std::vector<GateRule> rules = {MakeRule(
      "scan", "wall_seconds", GateRule::Direction::kLowerIsBetter, 0.2)};

  const GateReport report = EvaluateGate(rules, baselines, currents);
  const std::string text = GateReportToText(report, baselines, currents);
  EXPECT_NE(text.find("wall_seconds"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("baseline[run_host=baseline-box]"), std::string::npos);
  EXPECT_NE(text.find("current[run_host=pr-box]"), std::string::npos);
  EXPECT_NE(text.find("0/1 checks passed"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace distinct
