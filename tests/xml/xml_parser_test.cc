#include "xml/xml_parser.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

/// Records events as strings: "<name", ">name", "text".
class RecordingHandler : public XmlHandler {
 public:
  void OnStartElement(std::string_view name,
                      const std::vector<XmlAttribute>& attributes) override {
    std::string event = "<" + std::string(name);
    for (const XmlAttribute& attribute : attributes) {
      event += " " + attribute.name + "=" + attribute.value;
    }
    events.push_back(event);
  }
  void OnEndElement(std::string_view name) override {
    events.push_back(">" + std::string(name));
  }
  void OnText(std::string_view text) override {
    events.push_back("T:" + std::string(text));
  }

  std::vector<std::string> events;
};

TEST(XmlParserTest, SimpleDocument) {
  RecordingHandler handler;
  ASSERT_TRUE(XmlParser::Parse("<a><b>hi</b></a>", handler).ok());
  EXPECT_EQ(handler.events, (std::vector<std::string>{
                                "<a", "<b", "T:hi", ">b", ">a"}));
}

TEST(XmlParserTest, Attributes) {
  RecordingHandler handler;
  ASSERT_TRUE(
      XmlParser::Parse("<r key='conf/vldb/97' n=\"two\"/>", handler).ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"<r key=conf/vldb/97 n=two", ">r"}));
}

TEST(XmlParserTest, SelfClosingFiresBothEvents) {
  RecordingHandler handler;
  ASSERT_TRUE(XmlParser::Parse("<a><b/></a>", handler).ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"<a", "<b", ">b", ">a"}));
}

TEST(XmlParserTest, DeclarationCommentDoctypeSkipped) {
  RecordingHandler handler;
  const char* doc =
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE dblp SYSTEM \"dblp.dtd\" [ <!ENTITY x \"y\"> ]>\n"
      "<!-- a comment <with> tags -->\n"
      "<dblp></dblp>";
  ASSERT_TRUE(XmlParser::Parse(doc, handler).ok());
  EXPECT_EQ(handler.events, (std::vector<std::string>{"<dblp", ">dblp"}));
}

TEST(XmlParserTest, CdataPassedThroughVerbatim) {
  RecordingHandler handler;
  ASSERT_TRUE(
      XmlParser::Parse("<a><![CDATA[x < y & z]]></a>", handler).ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"<a", "T:x < y & z", ">a"}));
}

TEST(XmlParserTest, EntityDecodingInText) {
  RecordingHandler handler;
  ASSERT_TRUE(XmlParser::Parse("<a>x &amp; y &lt;3</a>", handler).ok());
  EXPECT_EQ(handler.events[1], "T:x & y <3");
}

TEST(XmlParserTest, EntityDecodingInAttributes) {
  RecordingHandler handler;
  ASSERT_TRUE(XmlParser::Parse("<a t=\"x&amp;y\"/>", handler).ok());
  EXPECT_EQ(handler.events[0], "<a t=x&y");
}

TEST(XmlParserTest, TextOutsideRootIgnored) {
  RecordingHandler handler;
  ASSERT_TRUE(XmlParser::Parse("  \n<a>x</a>\n  ", handler).ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"<a", "T:x", ">a"}));
}

TEST(XmlParserTest, MismatchedTagsRejected) {
  RecordingHandler handler;
  EXPECT_FALSE(XmlParser::Parse("<a><b></a></b>", handler).ok());
}

TEST(XmlParserTest, UnclosedElementRejected) {
  RecordingHandler handler;
  const Status status = XmlParser::Parse("<a><b></b>", handler);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("unclosed"), std::string::npos);
}

TEST(XmlParserTest, MalformedInputsRejected) {
  RecordingHandler handler;
  EXPECT_FALSE(XmlParser::Parse("<a", handler).ok());
  EXPECT_FALSE(XmlParser::Parse("<a attr></a>", handler).ok());
  EXPECT_FALSE(XmlParser::Parse("<a attr=value></a>", handler).ok());
  EXPECT_FALSE(XmlParser::Parse("<a attr=\"v></a>", handler).ok());
  EXPECT_FALSE(XmlParser::Parse("<!-- unterminated", handler).ok());
  EXPECT_FALSE(XmlParser::Parse("<1tag/>", handler).ok());
}

TEST(XmlParserTest, ErrorsCarryByteOffsets) {
  RecordingHandler handler;
  const Status status = XmlParser::Parse("<ok/><ok/><", handler);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("byte"), std::string::npos);
}

TEST(XmlParserTest, NestedSameName) {
  RecordingHandler handler;
  ASSERT_TRUE(XmlParser::Parse("<a><a>x</a></a>", handler).ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"<a", "<a", "T:x", ">a", ">a"}));
}

TEST(DecodeXmlEntitiesTest, PredefinedEntities) {
  EXPECT_EQ(DecodeXmlEntities("&amp;&lt;&gt;&quot;&apos;"), "&<>\"'");
}

TEST(DecodeXmlEntitiesTest, NumericReferences) {
  EXPECT_EQ(DecodeXmlEntities("&#65;&#x42;"), "AB");
  EXPECT_EQ(DecodeXmlEntities("&#228;"), "ä");   // two-byte UTF-8
  EXPECT_EQ(DecodeXmlEntities("&#x20AC;"), "€");  // three-byte UTF-8
}

TEST(DecodeXmlEntitiesTest, LatinNamesForDblpAuthors) {
  EXPECT_EQ(DecodeXmlEntities("J&ouml;rg"), "Jörg");
  EXPECT_EQ(DecodeXmlEntities("Fran&ccedil;ois"), "François");
  EXPECT_EQ(DecodeXmlEntities("M&uuml;ller"), "Müller");
}

TEST(DecodeXmlEntitiesTest, UnknownAndMalformedPreserved) {
  EXPECT_EQ(DecodeXmlEntities("&unknown;"), "&unknown;");
  EXPECT_EQ(DecodeXmlEntities("a & b"), "a & b");
  EXPECT_EQ(DecodeXmlEntities("&#xZZ;"), "&#xZZ;");
  EXPECT_EQ(DecodeXmlEntities("&;"), "&;");
  EXPECT_EQ(DecodeXmlEntities("trailing &"), "trailing &");
}

TEST(XmlParserTest, ParseFileMissingFile) {
  RecordingHandler handler;
  EXPECT_EQ(XmlParser::ParseFile("/no/such/file.xml", handler).code(),
            StatusCode::kNotFound);
}

TEST(XmlParserTest, DblpShapedRecord) {
  RecordingHandler handler;
  const char* doc =
      "<dblp><inproceedings key=\"conf/k\" mdate=\"2006-01-01\">"
      "<author>Wei Wang</author><author>Jiong Yang</author>"
      "<title>STING</title><booktitle>VLDB</booktitle>"
      "<year>1997</year></inproceedings></dblp>";
  ASSERT_TRUE(XmlParser::Parse(doc, handler).ok());
  // 7 start tags, 7 end tags, 5 text chunks.
  int starts = 0;
  int texts = 0;
  for (const std::string& event : handler.events) {
    if (event[0] == '<') ++starts;
    if (event[0] == 'T') ++texts;
  }
  EXPECT_EQ(starts, 7);
  EXPECT_EQ(texts, 5);
}

}  // namespace
}  // namespace distinct
