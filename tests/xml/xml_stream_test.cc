// Hardening tests for the push parser: chunk boundaries anywhere (including
// mid-tag and mid-entity), malformed input surfaced as Status instead of
// crashes or silent truncation, and the bounded-buffer OutOfRange guard.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "xml/xml_parser.h"

namespace distinct {
namespace {

/// Records events as strings: "<name attr=value", ">name", "T:text".
class RecordingHandler : public XmlHandler {
 public:
  void OnStartElement(std::string_view name,
                      const std::vector<XmlAttribute>& attributes) override {
    std::string event = "<" + std::string(name);
    for (const XmlAttribute& attribute : attributes) {
      event += " " + attribute.name + "=" + attribute.value;
    }
    events.push_back(event);
  }
  void OnEndElement(std::string_view name) override {
    events.push_back(">" + std::string(name));
  }
  void OnText(std::string_view text) override {
    // Text may arrive in several pieces under streaming; coalesce adjacent
    // runs so event sequences compare equal across chunkings.
    if (!events.empty() && events.back().rfind("T:", 0) == 0) {
      events.back() += text;
    } else {
      events.push_back("T:" + std::string(text));
    }
  }

  std::vector<std::string> events;
};

const char* kDblpShapedDoc =
    "<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?>\n"
    "<!DOCTYPE dblp SYSTEM \"dblp.dtd\">\n"
    "<dblp>\n"
    "<!-- a comment <with> angle brackets -->\n"
    "<article mdate=\"2002-01-03\" key=\"journals/tods/Chen76\">\n"
    "<author>Peter P. Chen</author>\n"
    "<title>The Entity-Relationship Model &amp; Friends "
    "&lt;rev. 2&gt;</title>\n"
    "<journal>ACM Trans. Database Syst.</journal>\n"
    "<year>1976</year>\n"
    "</article>\n"
    "<inproceedings key=\"conf/vldb/Gray81\">\n"
    "<author>Jim Gray</author>\n"
    "<title><![CDATA[Raw <bytes> & stuff]]></title>\n"
    "<year>1981</year>\n"
    "</inproceedings>\n"
    "</dblp>\n";

std::vector<std::string> ParseWhole(std::string_view doc) {
  RecordingHandler handler;
  EXPECT_TRUE(XmlParser::Parse(doc, handler).ok());
  return handler.events;
}

std::vector<std::string> ParseChunked(std::string_view doc,
                                      size_t chunk_bytes) {
  RecordingHandler handler;
  XmlStreamParser parser(handler);
  for (size_t at = 0; at < doc.size(); at += chunk_bytes) {
    EXPECT_TRUE(parser.Feed(doc.substr(at, chunk_bytes)).ok())
        << "chunk at " << at;
  }
  EXPECT_TRUE(parser.Finish().ok());
  EXPECT_EQ(parser.bytes_consumed(), doc.size());
  return handler.events;
}

TEST(XmlStreamTest, ByteAtATimeFeedMatchesWholeDocumentParse) {
  const std::vector<std::string> whole = ParseWhole(kDblpShapedDoc);
  EXPECT_EQ(ParseChunked(kDblpShapedDoc, 1), whole);
}

TEST(XmlStreamTest, ArbitraryChunkSizesMatchWholeDocumentParse) {
  const std::vector<std::string> whole = ParseWhole(kDblpShapedDoc);
  for (size_t chunk : {2, 3, 7, 16, 61, 4096}) {
    EXPECT_EQ(ParseChunked(kDblpShapedDoc, chunk), whole)
        << "chunk size " << chunk;
  }
}

TEST(XmlStreamTest, EntitySplitAcrossChunkBoundaryDecodes) {
  RecordingHandler handler;
  XmlStreamParser parser(handler);
  ASSERT_TRUE(parser.Feed("<t>fish &am").ok());
  ASSERT_TRUE(parser.Feed("p; chips</t>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"<t", "T:fish & chips", ">t"}));
}

TEST(XmlStreamTest, TruncatedEntityAtEndOfInputKeptLiterally) {
  // DBLP-in-the-wild: an ampersand that never becomes a reference must come
  // through literally, not hang the parser waiting for ';'.
  RecordingHandler handler;
  XmlStreamParser parser(handler);
  ASSERT_TRUE(parser.Feed("<t>Simon &am</t>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"<t", "T:Simon &am", ">t"}));
}

TEST(XmlStreamTest, CrlfInAttributeValueNormalizesToOneSpace) {
  RecordingHandler handler;
  XmlStreamParser parser(handler);
  ASSERT_TRUE(parser.Feed("<r mdate=\"2002\r\n01\" k=\"a\tb\nc\"/>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"<r mdate=2002 01 k=a b c", ">r"}));
}

TEST(XmlStreamTest, CrlfSplitAcrossChunksStillOneSpace) {
  RecordingHandler handler;
  XmlStreamParser parser(handler);
  ASSERT_TRUE(parser.Feed("<r mdate=\"2002\r").ok());
  ASSERT_TRUE(parser.Feed("\n01\"/>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"<r mdate=2002 01", ">r"}));
}

TEST(XmlStreamTest, OversizedStartTagIsOutOfRange) {
  RecordingHandler handler;
  XmlStreamOptions options;
  options.max_token_bytes = 64;
  XmlStreamParser parser(handler, options);
  const std::string huge =
      "<r key=\"" + std::string(1000, 'x');  // never terminated
  Status status = parser.Feed(huge);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange) << status.ToString();
  // Errors are sticky: the stream stays failed with the same code.
  EXPECT_EQ(parser.Feed("\"/>").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(parser.Finish().code(), StatusCode::kOutOfRange);
}

TEST(XmlStreamTest, OversizedCommentIsOutOfRange) {
  RecordingHandler handler;
  XmlStreamOptions options;
  options.max_token_bytes = 64;
  XmlStreamParser parser(handler, options);
  const std::string doc = "<a><!-- " + std::string(1000, '-');
  EXPECT_EQ(parser.Feed(doc).code(), StatusCode::kOutOfRange);
}

TEST(XmlStreamTest, BoundedBufferAcceptsLargeTextBetweenTags) {
  // Character data is not one construct — it streams through in pieces, so
  // text far larger than max_token_bytes must still parse.
  RecordingHandler handler;
  XmlStreamOptions options;
  options.max_token_bytes = 256;
  XmlStreamParser parser(handler, options);
  const std::string body(64 * 1024, 't');
  ASSERT_TRUE(parser.Feed("<t>").ok());
  for (size_t at = 0; at < body.size(); at += 1000) {
    ASSERT_TRUE(parser.Feed(std::string_view(body).substr(at, 1000)).ok());
  }
  ASSERT_TRUE(parser.Feed("</t>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  ASSERT_EQ(handler.events.size(), 3u);
  EXPECT_EQ(handler.events[1], "T:" + body);
}

TEST(XmlStreamTest, UnterminatedCommentAtEofIsDataLoss) {
  RecordingHandler handler;
  XmlStreamParser parser(handler);
  ASSERT_TRUE(parser.Feed("<a><!-- never closed").ok());
  EXPECT_EQ(parser.Finish().code(), StatusCode::kDataLoss);
}

TEST(XmlStreamTest, UnterminatedCdataAtEofIsDataLoss) {
  RecordingHandler handler;
  XmlStreamParser parser(handler);
  ASSERT_TRUE(parser.Feed("<a><![CDATA[half").ok());
  EXPECT_EQ(parser.Finish().code(), StatusCode::kDataLoss);
}

TEST(XmlStreamTest, UnterminatedStartTagAtEofIsDataLoss) {
  RecordingHandler handler;
  XmlStreamParser parser(handler);
  ASSERT_TRUE(parser.Feed("<article key=\"conf/never").ok());
  EXPECT_EQ(parser.Finish().code(), StatusCode::kDataLoss);
}

TEST(XmlStreamTest, UnclosedElementAtEofIsDataLoss) {
  RecordingHandler handler;
  XmlStreamParser parser(handler);
  ASSERT_TRUE(parser.Feed("<dblp><article>").ok());
  Status status = parser.Finish();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.ToString().find("article"), std::string::npos);
}

TEST(XmlStreamTest, MismatchedEndTagIsDataLoss) {
  RecordingHandler handler;
  XmlStreamParser parser(handler);
  EXPECT_EQ(parser.Feed("<a><b></a>").code(), StatusCode::kDataLoss);
}

TEST(XmlStreamTest, FeedAfterFinishIsFailedPrecondition) {
  RecordingHandler handler;
  XmlStreamParser parser(handler);
  ASSERT_TRUE(parser.Feed("<a/>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(parser.Feed("<b/>").code(), StatusCode::kFailedPrecondition);
}

TEST(XmlStreamTest, EmptyChunksAreHarmless) {
  RecordingHandler handler;
  XmlStreamParser parser(handler);
  ASSERT_TRUE(parser.Feed("").ok());
  ASSERT_TRUE(parser.Feed("<a/>").ok());
  ASSERT_TRUE(parser.Feed("").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(handler.events, (std::vector<std::string>{"<a", ">a"}));
}

}  // namespace
}  // namespace distinct
