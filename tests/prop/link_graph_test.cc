#include "prop/link_graph.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace distinct {
namespace {

class LinkGraphTest : public ::testing::Test {
 protected:
  LinkGraphTest() : db_(testing_util::MakeMiniDblp()) {
    auto graph = SchemaGraph::Build(db_);
    DISTINCT_CHECK(graph.ok());
    schema_ = std::make_unique<SchemaGraph>(*std::move(graph));
    DISTINCT_CHECK(
        schema_->PromoteAttribute(kConferencesTable, "publisher").ok());
    DISTINCT_CHECK(schema_->PromoteAttribute(kProceedingsTable, "year").ok());
    auto link = LinkGraph::Build(*schema_);
    DISTINCT_CHECK(link.ok());
    link_ = std::make_unique<LinkGraph>(*std::move(link));
  }

  int EdgeTo(const std::string& table, const std::string& attr = "") {
    for (int e = 0; e < schema_->num_edges(); ++e) {
      const SchemaEdge& edge = schema_->edge(e);
      const std::string target = attr.empty() ? table : table + "." + attr;
      if (schema_->node(edge.to_node).name == target) {
        return e;
      }
    }
    return -1;
  }

  Database db_;
  std::unique_ptr<SchemaGraph> schema_;
  std::unique_ptr<LinkGraph> link_;
};

TEST_F(LinkGraphTest, TupleCountsMatchTables) {
  EXPECT_EQ(link_->NumTuples(*db_.TableId(kAuthorsTable)), 5);
  EXPECT_EQ(link_->NumTuples(*db_.TableId(kPublishTable)), 7);
  EXPECT_EQ(link_->NumTuples(*db_.TableId(kPublicationsTable)), 3);
}

TEST_F(LinkGraphTest, AttributeUniversesAreDistinctValues) {
  // Publishers: P1, P2 -> 2 tuples. Years: 1997, 2002, 2001 -> 3.
  int publisher_node = -1;
  int year_node = -1;
  for (int n = 0; n < schema_->num_nodes(); ++n) {
    if (schema_->node(n).name == "Conferences.publisher") publisher_node = n;
    if (schema_->node(n).name == "Proceedings.year") year_node = n;
  }
  ASSERT_GE(publisher_node, 0);
  ASSERT_GE(year_node, 0);
  EXPECT_EQ(link_->NumTuples(publisher_node), 2);
  EXPECT_EQ(link_->NumTuples(year_node), 3);
}

TEST_F(LinkGraphTest, ForwardFollowsForeignKey) {
  const int author_edge = EdgeTo(kAuthorsTable);
  ASSERT_GE(author_edge, 0);
  // Publish row 0 -> Wei Wang (author row 0).
  const auto targets = link_->Forward(author_edge, 0);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], testing_util::kWeiWang);
}

TEST_F(LinkGraphTest, ReverseListsAllReferencingRows) {
  const int author_edge = EdgeTo(kAuthorsTable);
  const auto refs = link_->Reverse(author_edge,
                                   static_cast<int32_t>(
                                       testing_util::kWeiWang));
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0], testing_util::kWeiWangRef0);
  EXPECT_EQ(refs[1], testing_util::kWeiWangRef1);
  EXPECT_EQ(refs[2], testing_util::kWeiWangRef2);
}

TEST_F(LinkGraphTest, ReverseFanoutMatchesDegree) {
  const int paper_edge = EdgeTo(kPublicationsTable);
  ASSERT_GE(paper_edge, 0);
  // Paper 1 has three Publish rows.
  EXPECT_EQ(link_->Reverse(paper_edge, 1).size(), 3u);
  // ReverseFanout of a forward step arriving at paper 1:
  EXPECT_EQ(link_->ReverseFanout(JoinStep{paper_edge, true}, 1), 3);
}

TEST_F(LinkGraphTest, AttributeEdgeConnectsSharedValues) {
  const int publisher_edge = EdgeTo(kConferencesTable, "publisher");
  ASSERT_GE(publisher_edge, 0);
  // VLDB (conf 0) and SIGMOD (conf 1) share publisher P1.
  const auto p1 = link_->Forward(publisher_edge, 0);
  ASSERT_EQ(p1.size(), 1u);
  const auto back = link_->Reverse(publisher_edge, p1[0]);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], 0);
  EXPECT_EQ(back[1], 1);
}

TEST_F(LinkGraphTest, TupleLabelsAreReadable) {
  const int authors = *db_.TableId(kAuthorsTable);
  EXPECT_NE(link_->TupleLabel(authors, 0).find("Wei Wang"),
            std::string::npos);
  int publisher_node = -1;
  for (int n = 0; n < schema_->num_nodes(); ++n) {
    if (schema_->node(n).name == "Conferences.publisher") publisher_node = n;
  }
  EXPECT_EQ(link_->TupleLabel(publisher_node, 0), "P1");
}

TEST(LinkGraphNullTest, NullForeignKeysAreSkipped) {
  Database db;
  auto target = Table::Create(
      "target", {ColumnSpec{"id", ColumnType::kInt64, true, ""}});
  ASSERT_TRUE(target->AppendRow({Value::Int(0)}).ok());
  ASSERT_TRUE(db.AddTable(*std::move(target)).ok());
  auto source = Table::Create(
      "source", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
                 ColumnSpec{"fk", ColumnType::kInt64, false, "target"}});
  ASSERT_TRUE(source->AppendRow({Value::Int(0), Value::Int(0)}).ok());
  ASSERT_TRUE(source->AppendRow({Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(db.AddTable(*std::move(source)).ok());

  auto schema = SchemaGraph::Build(db);
  ASSERT_TRUE(schema.ok());
  auto link = LinkGraph::Build(*schema);
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(link->Forward(0, 0).size(), 1u);
  EXPECT_EQ(link->Forward(0, 1).size(), 0u);  // NULL
  EXPECT_EQ(link->Reverse(0, 0).size(), 1u);
}

TEST(LinkGraphNullTest, DanglingFkFailsBuild) {
  Database db;
  auto target = Table::Create(
      "target", {ColumnSpec{"id", ColumnType::kInt64, true, ""}});
  ASSERT_TRUE(db.AddTable(*std::move(target)).ok());
  auto source = Table::Create(
      "source", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
                 ColumnSpec{"fk", ColumnType::kInt64, false, "target"}});
  ASSERT_TRUE(source->AppendRow({Value::Int(0), Value::Int(42)}).ok());
  ASSERT_TRUE(db.AddTable(*std::move(source)).ok());

  auto schema = SchemaGraph::Build(db);
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(LinkGraph::Build(*schema).ok());
}

}  // namespace
}  // namespace distinct
