// Hand-verified probability propagation on the Fig. 1-style mini database
// (see test_util.h for the exact contents).

#include "prop/propagation.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace distinct {
namespace {

using testing_util::kWeiWangRef0;
using testing_util::kWeiWangRef1;

class PropagationTest : public ::testing::Test {
 protected:
  PropagationTest() : db_(testing_util::MakeMiniDblp()) {
    auto graph = SchemaGraph::Build(db_);
    DISTINCT_CHECK(graph.ok());
    schema_ = std::make_unique<SchemaGraph>(*std::move(graph));
    DISTINCT_CHECK(schema_->PromoteAttribute(kProceedingsTable, "year").ok());
    auto link = LinkGraph::Build(*schema_);
    DISTINCT_CHECK(link.ok());
    link_ = std::make_unique<LinkGraph>(*std::move(link));
    engine_ = std::make_unique<PropagationEngine>(*link_);
    publish_ = *db_.TableId(kPublishTable);
  }

  /// Builds a path by matching its Describe() suffix edges.
  JoinPath PathFromDescription(const std::string& description,
                               int max_length = 4) {
    PathEnumerationOptions options;
    options.max_length = max_length;
    for (const JoinPath& path :
         EnumerateJoinPaths(*schema_, publish_, options)) {
      if (path.Describe(*schema_) == description) {
        return path;
      }
    }
    ADD_FAILURE() << "no path " << description;
    return JoinPath{};
  }

  Database db_;
  std::unique_ptr<SchemaGraph> schema_;
  std::unique_ptr<LinkGraph> link_;
  std::unique_ptr<PropagationEngine> engine_;
  int publish_ = -1;
};

TEST_F(PropagationTest, SingleStepPaperPath) {
  const JoinPath path =
      PathFromDescription("Publish -paper_id-> Publications");
  const NeighborProfile profile = engine_->Compute(path, kWeiWangRef0);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_EQ(profile.entries()[0].tuple, 0);  // paper 0
  EXPECT_DOUBLE_EQ(profile.entries()[0].forward, 1.0);
  // Reverse: paper 0 has two Publish rows, so Prob(paper0 -> ref0) = 1/2.
  EXPECT_DOUBLE_EQ(profile.entries()[0].reverse, 0.5);
}

TEST_F(PropagationTest, CoauthorPathExcludesOrigin) {
  const JoinPath path = PathFromDescription(
      "Publish -paper_id-> Publications <-paper_id- Publish "
      "-author_id-> Authors");
  // Ref 0 is on paper 0 with Jiong Yang. With the origin excluded, the only
  // coauthor name reached is Jiong Yang with forward 1/2 (the other half of
  // the probability flowed into the origin and was discarded).
  const NeighborProfile profile = engine_->Compute(path, kWeiWangRef0);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_EQ(profile.entries()[0].tuple, testing_util::kJiongYang);
  EXPECT_DOUBLE_EQ(profile.entries()[0].forward, 0.5);
  // Reverse: 1/2 (into paper 0) * 1 * 1/2 (Jiong Yang has two refs) = 1/4.
  EXPECT_DOUBLE_EQ(profile.entries()[0].reverse, 0.25);
}

TEST_F(PropagationTest, CoauthorPathWithOriginIncluded) {
  const JoinPath path = PathFromDescription(
      "Publish -paper_id-> Publications <-paper_id- Publish "
      "-author_id-> Authors");
  PropagationOptions options;
  options.exclude_start_tuple = false;
  const NeighborProfile profile =
      engine_->Compute(path, kWeiWangRef0, options);
  // Now both paper-0 authors appear: Wei Wang (via the origin) and Jiong
  // Yang, 1/2 each.
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_DOUBLE_EQ(profile.ForwardOf(testing_util::kWeiWang), 0.5);
  EXPECT_DOUBLE_EQ(profile.ForwardOf(testing_util::kJiongYang), 0.5);
  EXPECT_DOUBLE_EQ(profile.ForwardSum(), 1.0);
}

TEST_F(PropagationTest, ThreeAuthorPaper) {
  const JoinPath path = PathFromDescription(
      "Publish -paper_id-> Publications <-paper_id- Publish "
      "-author_id-> Authors");
  // Ref 1 (row 2) is on paper 1 with Haixun Wang and Jiong Yang.
  const NeighborProfile profile = engine_->Compute(path, kWeiWangRef1);
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_DOUBLE_EQ(profile.ForwardOf(testing_util::kHaixunWang), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(profile.ForwardOf(testing_util::kJiongYang), 1.0 / 3.0);
  // Reverse to ref1: via Haixun Wang (1 ref): 1/3 * 1 * 1 = 1/3.
  //                  via Jiong Yang (2 refs): 1/3 * 1 * 1/2 = 1/6.
  for (const ProfileEntry& entry : profile.entries()) {
    if (entry.tuple == testing_util::kHaixunWang) {
      EXPECT_DOUBLE_EQ(entry.reverse, 1.0 / 3.0);
    } else {
      EXPECT_DOUBLE_EQ(entry.reverse, 1.0 / 6.0);
    }
  }
}

TEST_F(PropagationTest, PromotedYearPath) {
  const JoinPath path = PathFromDescription(
      "Publish -paper_id-> Publications -proc_id-> Proceedings "
      "-year-> Proceedings.year");
  const NeighborProfile profile = engine_->Compute(path, kWeiWangRef0);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_DOUBLE_EQ(profile.entries()[0].forward, 1.0);
  // Reverse: 1/2 (paper 0 rows) * 1 (proc 0 has one paper) * 1 (one
  // proceedings in 1997) = 1/2.
  EXPECT_DOUBLE_EQ(profile.entries()[0].reverse, 0.5);
}

TEST_F(PropagationTest, ForwardMassConservedWithoutExclusion) {
  PropagationOptions options;
  options.exclude_start_tuple = false;
  PathEnumerationOptions enumeration;
  enumeration.max_length = 3;
  for (const JoinPath& path :
       EnumerateJoinPaths(*schema_, publish_, enumeration)) {
    const NeighborProfile profile =
        engine_->Compute(path, kWeiWangRef0, options);
    EXPECT_NEAR(profile.ForwardSum(), 1.0, 1e-12)
        << path.Describe(*schema_);
  }
}

TEST_F(PropagationTest, ReverseProbabilitiesAreValidProbabilities) {
  PathEnumerationOptions enumeration;
  enumeration.max_length = 4;
  for (const JoinPath& path :
       EnumerateJoinPaths(*schema_, publish_, enumeration)) {
    for (int32_t ref : {0, 2, 6}) {
      const NeighborProfile profile = engine_->Compute(path, ref);
      for (const ProfileEntry& entry : profile.entries()) {
        EXPECT_GT(entry.forward, 0.0);
        EXPECT_LE(entry.forward, 1.0 + 1e-12);
        EXPECT_GT(entry.reverse, 0.0);
        EXPECT_LE(entry.reverse, 1.0 + 1e-12);
      }
    }
  }
}

TEST_F(PropagationTest, TruncationSetsFlag) {
  const JoinPath path = PathFromDescription(
      "Publish -paper_id-> Publications <-paper_id- Publish "
      "-author_id-> Authors");
  PropagationOptions options;
  options.max_instances = 1;
  const NeighborProfile profile =
      engine_->Compute(path, kWeiWangRef1, options);
  EXPECT_TRUE(profile.truncated());
  EXPECT_LE(profile.size(), 1u);
}

TEST_F(PropagationTest, DeterministicAcrossCalls) {
  const JoinPath path = PathFromDescription(
      "Publish -paper_id-> Publications <-paper_id- Publish "
      "-author_id-> Authors");
  const NeighborProfile a = engine_->Compute(path, kWeiWangRef1);
  const NeighborProfile b = engine_->Compute(path, kWeiWangRef1);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].tuple, b.entries()[i].tuple);
    EXPECT_DOUBLE_EQ(a.entries()[i].forward, b.entries()[i].forward);
    EXPECT_DOUBLE_EQ(a.entries()[i].reverse, b.entries()[i].reverse);
  }
}

}  // namespace
}  // namespace distinct
