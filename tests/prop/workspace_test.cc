// The dense workspace/memo engine must agree with the depth-first and
// level-wise references on every path, tuple, and option combination — and
// be bit-identical to itself across cache capacities, hit/miss patterns,
// and thread counts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../test_util.h"
#include "common/thread_pool.h"
#include "core/distinct.h"
#include "dblp/generator.h"
#include "prop/propagation.h"
#include "prop/workspace.h"
#include "sim/profile_store.h"

namespace distinct {
namespace {

void ExpectProfilesNear(const NeighborProfile& a, const NeighborProfile& b,
                        const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a.entries()[e].tuple, b.entries()[e].tuple) << context;
    EXPECT_NEAR(a.entries()[e].forward, b.entries()[e].forward, 1e-12)
        << context;
    EXPECT_NEAR(a.entries()[e].reverse, b.entries()[e].reverse, 1e-12)
        << context;
  }
}

/// Exact comparison: tuples, bit-for-bit probabilities, truncation flag.
void ExpectProfilesIdentical(const NeighborProfile& a,
                             const NeighborProfile& b,
                             const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  EXPECT_EQ(a.truncated(), b.truncated()) << context;
  for (size_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a.entries()[e].tuple, b.entries()[e].tuple) << context;
    EXPECT_EQ(a.entries()[e].forward, b.entries()[e].forward) << context;
    EXPECT_EQ(a.entries()[e].reverse, b.entries()[e].reverse) << context;
  }
}

struct World {
  Database db;
  std::unique_ptr<SchemaGraph> schema;
  std::unique_ptr<LinkGraph> link;
  std::vector<JoinPath> paths;
  std::vector<int32_t> refs;
};

World MakeWorld(Database db, std::vector<int32_t> refs) {
  World world;
  world.db = std::move(db);
  auto schema = SchemaGraph::Build(world.db);
  DISTINCT_CHECK(schema.ok());
  for (const auto& [table, column] : DblpDefaultPromotions()) {
    DISTINCT_CHECK(schema->PromoteAttribute(table, column).ok());
  }
  world.schema = std::make_unique<SchemaGraph>(*std::move(schema));
  auto link = LinkGraph::Build(*world.schema);
  DISTINCT_CHECK(link.ok());
  world.link = std::make_unique<LinkGraph>(*std::move(link));
  PathEnumerationOptions enumeration;
  enumeration.max_length = 4;
  world.paths = EnumerateJoinPaths(
      *world.schema, *world.db.TableId(kPublishTable), enumeration);
  DISTINCT_CHECK(!world.paths.empty());
  world.refs = std::move(refs);
  return world;
}

World MakeMiniWorld() {
  Database db = testing_util::MakeMiniDblp();
  const Table& publish = **db.FindTable(kPublishTable);
  std::vector<int32_t> refs;
  for (int32_t ref = 0; ref < publish.num_rows(); ++ref) {
    refs.push_back(ref);
  }
  return MakeWorld(std::move(db), std::move(refs));
}

World MakeGeneratedWorld() {
  GeneratorConfig config;
  config.seed = 23;
  config.num_communities = 6;
  config.authors_per_community = 10;
  config.papers_per_community_year = 4.0;
  config.ambiguous = {{"Wei Wang", 3, 18}};
  auto dataset = GenerateDblpDataset(config);
  DISTINCT_CHECK(dataset.ok());
  std::vector<int32_t> refs = dataset->cases[0].publish_rows;
  return MakeWorld(std::move(dataset->db), std::move(refs));
}

/// Exclusion on/off × cache capacity {0, small, unbounded}.
class WorkspaceEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<bool, size_t>> {};

TEST_P(WorkspaceEquivalenceTest, AgreesWithBothReferenceEngines) {
  const auto [exclude, cache_bytes] = GetParam();
  for (const World& world : {MakeMiniWorld(), MakeGeneratedWorld()}) {
    PropagationEngine engine(*world.link);

    PropagationOptions dfs;
    dfs.algorithm = PropagationAlgorithm::kDepthFirst;
    dfs.exclude_start_tuple = exclude;
    PropagationOptions level = dfs;
    level.algorithm = PropagationAlgorithm::kLevelWise;
    PropagationOptions dense = dfs;
    dense.algorithm = PropagationAlgorithm::kWorkspace;
    dense.cache_bytes = cache_bytes;

    PropagationWorkspace workspace(*world.link);
    SubtreeCache cache(cache_bytes);
    for (const int32_t ref : world.refs) {
      for (size_t p = 0; p < world.paths.size(); ++p) {
        const JoinPath& path = world.paths[p];
        const std::string context =
            path.Describe(*world.schema) + " ref " + std::to_string(ref);
        const NeighborProfile expected = engine.Compute(path, ref, dfs);
        ExpectProfilesNear(expected, engine.Compute(path, ref, level),
                           context + " (level-wise)");
        ExpectProfilesNear(
            expected,
            engine.Compute(path, ref, dense, workspace, &cache,
                           static_cast<int>(p)),
            context + " (workspace)");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ExclusionAndCacheSize, WorkspaceEquivalenceTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(size_t{0}, size_t{4096},
                                         size_t{64} << 20)));

TEST(WorkspaceDeterminismTest, BitIdenticalAcrossCacheSizesAndThreads) {
  const World world = MakeGeneratedWorld();
  PropagationEngine engine(*world.link);
  PropagationOptions options;  // default algorithm: kWorkspace

  // Reference run: serial, no memo storage.
  options.cache_bytes = 0;
  const ProfileStore reference = ProfileStore::Build(
      engine, world.paths, options, world.refs);

  for (const size_t cache_bytes :
       {size_t{0}, size_t{4096}, size_t{64} << 20}) {
    for (const int threads : {1, 2, 8}) {
      options.cache_bytes = cache_bytes;
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) {
        pool = std::make_unique<ThreadPool>(threads);
      }
      const ProfileStore store = ProfileStore::Build(
          engine, world.paths, options, world.refs, pool.get(),
          /*min_parallel_refs=*/1);
      ASSERT_EQ(store.num_refs(), reference.num_refs());
      for (size_t i = 0; i < store.num_refs(); ++i) {
        for (size_t p = 0; p < world.paths.size(); ++p) {
          ExpectProfilesIdentical(
              reference.profiles(i)[p], store.profiles(i)[p],
              "cache=" + std::to_string(cache_bytes) + " threads=" +
                  std::to_string(threads) + " ref " + std::to_string(i) +
                  " path " + std::to_string(p));
        }
      }
    }
  }
}

TEST(WorkspaceBudgetTest, FallbackMatchesDepthFirstTruncation) {
  const World world = MakeMiniWorld();
  PropagationEngine engine(*world.link);

  PropagationOptions dfs;
  dfs.algorithm = PropagationAlgorithm::kDepthFirst;
  dfs.max_instances = 1;
  PropagationOptions dense = dfs;
  dense.algorithm = PropagationAlgorithm::kWorkspace;

  bool saw_truncation = false;
  for (const int32_t ref : world.refs) {
    for (const JoinPath& path : world.paths) {
      const NeighborProfile expected = engine.Compute(path, ref, dfs);
      saw_truncation = saw_truncation || expected.truncated();
      ExpectProfilesIdentical(
          expected, engine.Compute(path, ref, dense),
          path.Describe(*world.schema) + " ref " + std::to_string(ref));
    }
  }
  EXPECT_TRUE(saw_truncation);  // the budget must actually bite somewhere
}

TEST(SubtreeCacheTest, FindInsertEvictAndStats) {
  SubtreeCache cache(1 << 20);
  EXPECT_EQ(cache.Find(0, 7), nullptr);

  SubtreeDistribution dist;
  dist.entries = {SubtreeEntry{3, 0.5, 0.25}};
  dist.instances = 1.0;
  auto resident = cache.Insert(0, 7, dist);
  ASSERT_NE(resident, nullptr);

  auto hit = cache.Find(0, 7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), resident.get());
  ASSERT_EQ(hit->entries.size(), 1u);
  EXPECT_EQ(hit->entries[0].tuple, 3);
  EXPECT_EQ(cache.Find(1, 7), nullptr);  // other path id: distinct key

  const SubtreeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes, 0);
}

TEST(SubtreeCacheTest, ZeroCapacityNeverStoresButStillReturnsValues) {
  SubtreeCache cache(0);
  SubtreeDistribution dist;
  dist.entries = {SubtreeEntry{1, 1.0, 1.0}};
  auto resident = cache.Insert(0, 1, dist);
  ASSERT_NE(resident, nullptr);  // callers can still merge from the return
  EXPECT_EQ(cache.Find(0, 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().bytes, 0);
}

TEST(SubtreeCacheTest, TinyCapacityEvictsToFit) {
  // Room for roughly one entry per shard; inserting many keys must evict
  // rather than grow without bound.
  SubtreeCache cache(16 * 128);
  SubtreeDistribution dist;
  dist.entries.assign(4, SubtreeEntry{0, 1.0, 1.0});
  for (int32_t t = 0; t < 64; ++t) {
    cache.Insert(0, t, dist);
  }
  const SubtreeCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(static_cast<size_t>(stats.bytes), size_t{16} * 128);
}

TEST(SubtreeCacheTest, SharedCacheHitsAcrossBuilds) {
  const World world = MakeGeneratedWorld();
  PropagationEngine engine(*world.link);
  PropagationOptions options;  // kWorkspace

  SubtreeCache cache(64 << 20);
  (void)ProfileStore::Build(engine, world.paths, options, world.refs,
                            nullptr, ProfileStore::kMinParallelRefs, &cache);
  const int64_t misses_first = cache.stats().misses;
  EXPECT_GT(misses_first, 0);

  // Second build over the same refs: every subtree is already memoized.
  (void)ProfileStore::Build(engine, world.paths, options, world.refs,
                            nullptr, ProfileStore::kMinParallelRefs, &cache);
  const SubtreeCacheStats stats = cache.stats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_EQ(stats.misses, misses_first);
}

TEST(SubtreeJunctionLevelTest, PicksDeepestOriginLevelUnderExclusion) {
  JoinPath path;
  path.start_node = 0;
  path.steps.resize(4);
  // Publish -> Publications -> Publish -> Authors -> Publish-like shape.
  const std::vector<int> node_at = {0, 1, 0, 2, 0};
  EXPECT_EQ(SubtreeJunctionLevel(path, node_at, true), 4u);
  EXPECT_EQ(SubtreeJunctionLevel(path, node_at, false), 1u);

  // Origin node reappears only mid-path: the suffix below it is shareable.
  const std::vector<int> mid = {0, 1, 0, 2, 3};
  EXPECT_EQ(SubtreeJunctionLevel(path, mid, true), 2u);

  // Origin never reappears: everything past level 1 is shareable.
  const std::vector<int> none = {0, 1, 2, 3, 4};
  EXPECT_EQ(SubtreeJunctionLevel(path, none, true), 1u);
  EXPECT_EQ(SubtreeJunctionLevel(path, none, false), 1u);
}

/// The tentpole's end-to-end guarantee: identical clustering with the memo
/// on vs. off, serial and parallel.
TEST(WorkspaceEndToEndTest, ClusteringIdenticalCacheOnOffAcrossThreads) {
  GeneratorConfig generator;
  generator.seed = 29;
  generator.num_communities = 8;
  generator.authors_per_community = 12;
  generator.ambiguous = {{"Wei Wang", 4, 24}};
  auto dataset = GenerateDblpDataset(generator);
  ASSERT_TRUE(dataset.ok());

  std::vector<int> reference_assignment;
  for (const int cache_mb : {0, 64}) {
    for (const int threads : {1, 8}) {
      DistinctConfig config;
      config.supervised = false;
      config.promotions = DblpDefaultPromotions();
      config.propagation_cache_mb = cache_mb;
      config.num_threads = threads;
      auto engine =
          Distinct::Create(dataset->db, DblpReferenceSpec(), config);
      ASSERT_TRUE(engine.ok());
      auto result = engine->ResolveName("Wei Wang");
      ASSERT_TRUE(result.ok());
      if (reference_assignment.empty()) {
        reference_assignment = result->clustering.assignment;
        ASSERT_FALSE(reference_assignment.empty());
      } else {
        EXPECT_EQ(result->clustering.assignment, reference_assignment)
            << "cache_mb=" << cache_mb << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace distinct
