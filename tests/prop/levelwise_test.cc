// The level-wise propagation algorithm must agree with the depth-first
// reference on every path, tuple, and option combination.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/distinct.h"
#include "dblp/generator.h"
#include "prop/propagation.h"

namespace distinct {
namespace {

void ExpectProfilesEqual(const NeighborProfile& a, const NeighborProfile& b,
                         const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a.entries()[e].tuple, b.entries()[e].tuple) << context;
    EXPECT_NEAR(a.entries()[e].forward, b.entries()[e].forward, 1e-12)
        << context;
    EXPECT_NEAR(a.entries()[e].reverse, b.entries()[e].reverse, 1e-12)
        << context;
  }
}

class LevelWiseTest : public ::testing::TestWithParam<bool> {};

TEST_P(LevelWiseTest, AgreesWithDepthFirstOnMiniWorld) {
  Database db = testing_util::MakeMiniDblp();
  auto schema = SchemaGraph::Build(db);
  ASSERT_TRUE(schema.ok());
  for (const auto& [table, column] : DblpDefaultPromotions()) {
    ASSERT_TRUE(schema->PromoteAttribute(table, column).ok());
  }
  auto link = LinkGraph::Build(*schema);
  ASSERT_TRUE(link.ok());
  PropagationEngine engine(*link);

  PathEnumerationOptions enumeration;
  enumeration.max_length = 4;
  const auto paths = EnumerateJoinPaths(
      *schema, *db.TableId(kPublishTable), enumeration);
  ASSERT_FALSE(paths.empty());

  PropagationOptions dfs;
  dfs.algorithm = PropagationAlgorithm::kDepthFirst;
  dfs.exclude_start_tuple = GetParam();
  PropagationOptions level = dfs;
  level.algorithm = PropagationAlgorithm::kLevelWise;

  const Table& publish = **db.FindTable(kPublishTable);
  for (int32_t ref = 0; ref < publish.num_rows(); ++ref) {
    for (const JoinPath& path : paths) {
      ExpectProfilesEqual(
          engine.Compute(path, ref, dfs), engine.Compute(path, ref, level),
          path.Describe(*schema) + " ref " + std::to_string(ref));
    }
  }
}

TEST_P(LevelWiseTest, AgreesWithDepthFirstOnGeneratedWorld) {
  GeneratorConfig config;
  config.seed = 23;
  config.num_communities = 6;
  config.authors_per_community = 10;
  config.papers_per_community_year = 4.0;
  config.ambiguous = {{"Wei Wang", 3, 18}};
  auto dataset = GenerateDblpDataset(config);
  ASSERT_TRUE(dataset.ok());

  auto schema = SchemaGraph::Build(dataset->db);
  ASSERT_TRUE(schema.ok());
  for (const auto& [table, column] : DblpDefaultPromotions()) {
    ASSERT_TRUE(schema->PromoteAttribute(table, column).ok());
  }
  auto link = LinkGraph::Build(*schema);
  ASSERT_TRUE(link.ok());
  PropagationEngine engine(*link);

  PathEnumerationOptions enumeration;
  enumeration.max_length = 4;
  const auto paths = EnumerateJoinPaths(
      *schema, *dataset->db.TableId(kPublishTable), enumeration);

  PropagationOptions dfs;
  dfs.algorithm = PropagationAlgorithm::kDepthFirst;
  dfs.exclude_start_tuple = GetParam();
  PropagationOptions level = dfs;
  level.algorithm = PropagationAlgorithm::kLevelWise;

  for (const int32_t ref : dataset->cases[0].publish_rows) {
    for (const JoinPath& path : paths) {
      ExpectProfilesEqual(
          engine.Compute(path, ref, dfs), engine.Compute(path, ref, level),
          path.Describe(*schema) + " ref " + std::to_string(ref));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ExcludeOriginOnOff, LevelWiseTest,
                         ::testing::Bool());

TEST(LevelWiseBudgetTest, HonorsMaxInstancesViaDepthFirstFallback) {
  // The sweep itself is budget-free, so when the instance count exceeds
  // max_instances the engine must rerun depth-first — producing exactly the
  // DFS engine's truncated profile, flag included.
  Database db = testing_util::MakeMiniDblp();
  auto schema = SchemaGraph::Build(db);
  ASSERT_TRUE(schema.ok());
  for (const auto& [table, column] : DblpDefaultPromotions()) {
    ASSERT_TRUE(schema->PromoteAttribute(table, column).ok());
  }
  auto link = LinkGraph::Build(*schema);
  ASSERT_TRUE(link.ok());
  PropagationEngine engine(*link);

  PathEnumerationOptions enumeration;
  enumeration.max_length = 4;
  const auto paths = EnumerateJoinPaths(
      *schema, *db.TableId(kPublishTable), enumeration);

  PropagationOptions dfs;
  dfs.algorithm = PropagationAlgorithm::kDepthFirst;
  dfs.max_instances = 1;
  PropagationOptions level = dfs;
  level.algorithm = PropagationAlgorithm::kLevelWise;

  bool saw_truncation = false;
  const Table& publish = **db.FindTable(kPublishTable);
  for (int32_t ref = 0; ref < publish.num_rows(); ++ref) {
    for (const JoinPath& path : paths) {
      const NeighborProfile expected = engine.Compute(path, ref, dfs);
      const NeighborProfile actual = engine.Compute(path, ref, level);
      const std::string context =
          path.Describe(*schema) + " ref " + std::to_string(ref);
      EXPECT_EQ(expected.truncated(), actual.truncated()) << context;
      ASSERT_EQ(expected.size(), actual.size()) << context;
      for (size_t e = 0; e < expected.size(); ++e) {
        EXPECT_EQ(expected.entries()[e].tuple, actual.entries()[e].tuple)
            << context;
        EXPECT_EQ(expected.entries()[e].forward,
                  actual.entries()[e].forward)
            << context;
        EXPECT_EQ(expected.entries()[e].reverse,
                  actual.entries()[e].reverse)
            << context;
      }
      saw_truncation = saw_truncation || expected.truncated();
    }
  }
  EXPECT_TRUE(saw_truncation);
}

TEST(LevelWiseEndToEndTest, PipelineProducesSameClusters) {
  GeneratorConfig generator;
  generator.seed = 29;
  generator.num_communities = 8;
  generator.authors_per_community = 12;
  generator.ambiguous = {{"Wei Wang", 4, 24}};
  auto dataset = GenerateDblpDataset(generator);
  ASSERT_TRUE(dataset.ok());

  DistinctConfig dfs_config;
  dfs_config.supervised = false;
  dfs_config.promotions = DblpDefaultPromotions();
  DistinctConfig level_config = dfs_config;
  level_config.propagation.algorithm = PropagationAlgorithm::kLevelWise;

  auto dfs_engine =
      Distinct::Create(dataset->db, DblpReferenceSpec(), dfs_config);
  auto level_engine =
      Distinct::Create(dataset->db, DblpReferenceSpec(), level_config);
  ASSERT_TRUE(dfs_engine.ok() && level_engine.ok());

  auto dfs_result = dfs_engine->ResolveName("Wei Wang");
  auto level_result = level_engine->ResolveName("Wei Wang");
  ASSERT_TRUE(dfs_result.ok() && level_result.ok());
  EXPECT_EQ(dfs_result->clustering.assignment,
            level_result->clustering.assignment);
}

}  // namespace
}  // namespace distinct
