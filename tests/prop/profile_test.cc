#include "prop/profile.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(NeighborProfileTest, SortsEntriesByTuple) {
  NeighborProfile profile({{5, 0.2, 0.1}, {1, 0.3, 0.2}, {3, 0.5, 0.7}});
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile.entries()[0].tuple, 1);
  EXPECT_EQ(profile.entries()[1].tuple, 3);
  EXPECT_EQ(profile.entries()[2].tuple, 5);
}

TEST(NeighborProfileTest, ForwardSum) {
  NeighborProfile profile({{0, 0.25, 0.0}, {1, 0.75, 0.0}});
  EXPECT_DOUBLE_EQ(profile.ForwardSum(), 1.0);
  EXPECT_DOUBLE_EQ(NeighborProfile().ForwardSum(), 0.0);
}

TEST(NeighborProfileTest, ForwardOfBinarySearch) {
  NeighborProfile profile({{2, 0.1, 0.0}, {7, 0.4, 0.0}, {9, 0.5, 0.0}});
  EXPECT_DOUBLE_EQ(profile.ForwardOf(2), 0.1);
  EXPECT_DOUBLE_EQ(profile.ForwardOf(7), 0.4);
  EXPECT_DOUBLE_EQ(profile.ForwardOf(9), 0.5);
  EXPECT_DOUBLE_EQ(profile.ForwardOf(3), 0.0);
  EXPECT_DOUBLE_EQ(profile.ForwardOf(100), 0.0);
  EXPECT_DOUBLE_EQ(profile.ForwardOf(-1), 0.0);
}

TEST(NeighborProfileTest, EmptyProfile) {
  NeighborProfile profile;
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.size(), 0u);
  EXPECT_FALSE(profile.truncated());
}

TEST(NeighborProfileTest, TruncatedFlag) {
  NeighborProfile profile;
  profile.set_truncated(true);
  EXPECT_TRUE(profile.truncated());
}

}  // namespace
}  // namespace distinct
