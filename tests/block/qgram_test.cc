#include "block/qgram.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(NormalizeNameTest, LowercasesAndCollapsesWhitespace) {
  EXPECT_EQ(NormalizeName("Wei  WANG "), "wei wang");
  EXPECT_EQ(NormalizeName("\tJim\nSmith"), "jim smith");
  EXPECT_EQ(NormalizeName(""), "");
  EXPECT_EQ(NormalizeName("   "), "");
  EXPECT_EQ(NormalizeName("abc"), "abc");
}

TEST(QGramsTest, PaddedGrams) {
  const auto grams = QGrams("ab", 3);
  EXPECT_EQ(grams, (std::vector<std::string>{"##a", "#ab", "ab#", "b##"}));
}

TEST(QGramsTest, EmptyTextHasNoGrams) {
  EXPECT_TRUE(QGrams("", 3).empty());
  EXPECT_TRUE(QGrams("  ", 3).empty());
}

TEST(QGramsTest, NormalizationApplied) {
  EXPECT_EQ(QGrams("AB", 3), QGrams("ab", 3));
  EXPECT_EQ(QGrams("a  b", 2), QGrams("a b", 2));
}

TEST(QGramJaccardTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(QGramJaccard("Wei Wang", "wei wang"), 1.0);
  EXPECT_DOUBLE_EQ(QGramJaccard("", ""), 1.0);
}

TEST(QGramJaccardTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(QGramJaccard("aaaa", "zzzz"), 0.0);
  EXPECT_DOUBLE_EQ(QGramJaccard("abc", ""), 0.0);
}

TEST(QGramJaccardTest, SimilarNamesScoreHigh) {
  EXPECT_GT(QGramJaccard("Wei Wang", "Wei  Wang"), 0.99);
  EXPECT_GT(QGramJaccard("Wei Wang", "Wei Wangg"), 0.6);
  EXPECT_LT(QGramJaccard("Wei Wang", "Bing Liu"), 0.2);
  EXPECT_GT(QGramJaccard("Jonathan Smith", "Jonathon Smith"), 0.5);
}

TEST(QGramJaccardTest, SymmetricAndBounded) {
  const char* names[] = {"Wei Wang", "Wei Wangg", "Bing Liu", "B Liu", ""};
  for (const char* a : names) {
    for (const char* b : names) {
      const double ab = QGramJaccard(a, b);
      EXPECT_DOUBLE_EQ(ab, QGramJaccard(b, a));
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
  }
}

TEST(QGramIndexTest, LookupFindsSimilarNames) {
  QGramIndex index;
  const int wei = index.Add("Wei Wang");
  index.Add("Bing Liu");
  const int wei2 = index.Add("Wei  Wang");
  EXPECT_EQ(index.size(), 3);

  const auto results = index.Lookup("wei wang", 0.9);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(results[0].similarity, 1.0);
  // Both Wei Wang variants match with similarity 1 (ordered by id).
  EXPECT_EQ(results[0].id2, wei);
  EXPECT_EQ(results[1].id2, wei2);
}

TEST(QGramIndexTest, LookupThresholdFilters) {
  QGramIndex index;
  index.Add("Wei Wang");
  index.Add("Wei Wangg");
  EXPECT_EQ(index.Lookup("Wei Wang", 0.99).size(), 1u);
  EXPECT_EQ(index.Lookup("Wei Wang", 0.5).size(), 2u);
  EXPECT_TRUE(index.Lookup("Zzz Yyy", 0.5).empty());
}

TEST(QGramIndexTest, LookupOrdersByDescendingSimilarity) {
  QGramIndex index;
  index.Add("Wei Wangggggg");
  index.Add("Wei Wang");
  index.Add("Wei Wangg");
  const auto results = index.Lookup("Wei Wang", 0.2);
  ASSERT_GE(results.size(), 2u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].similarity, results[i].similarity);
  }
  EXPECT_EQ(index.name(results[0].id2), "Wei Wang");
}

TEST(QGramIndexTest, SelfJoinFindsEachPairOnce) {
  QGramIndex index;
  index.Add("Wei Wang");   // 0
  index.Add("wei wang");   // 1 (identical normalized)
  index.Add("Wei Wangg");  // 2
  index.Add("Bing Liu");   // 3

  const auto pairs = index.SimilarPairs(0.5);
  // (0,1), (0,2), (1,2) — Bing Liu matches nothing.
  ASSERT_EQ(pairs.size(), 3u);
  for (const SimilarPair& pair : pairs) {
    EXPECT_LT(pair.id1, pair.id2);
    EXPECT_GE(pair.similarity, 0.5);
    EXPECT_NE(pair.id1, 3);
    EXPECT_NE(pair.id2, 3);
  }
  EXPECT_EQ(pairs[0].id1, 0);
  EXPECT_EQ(pairs[0].id2, 1);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
}

TEST(QGramIndexTest, SelfJoinMatchesBruteForce) {
  QGramIndex index;
  const char* names[] = {"Wei Wang", "Wei Wangg", "Wei Wong", "Bing Liu",
                         "Bing  Liu", "Jim Smith", "Jim Smyth", "J Smith"};
  for (const char* name : names) {
    index.Add(name);
  }
  const double threshold = 0.4;
  const auto pairs = index.SimilarPairs(threshold);
  // Brute force.
  std::vector<SimilarPair> expected;
  for (int i = 0; i < index.size(); ++i) {
    for (int j = i + 1; j < index.size(); ++j) {
      const double s = QGramJaccard(names[i], names[j]);
      if (s >= threshold) {
        expected.push_back(SimilarPair{i, j, s});
      }
    }
  }
  ASSERT_EQ(pairs.size(), expected.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    EXPECT_EQ(pairs[p].id1, expected[p].id1);
    EXPECT_EQ(pairs[p].id2, expected[p].id2);
    EXPECT_NEAR(pairs[p].similarity, expected[p].similarity, 1e-12);
  }
}

TEST(QGramIndexDeathTest, InvalidArguments) {
  EXPECT_DEATH(QGramIndex(1), "CHECK failed");
  QGramIndex index;
  index.Add("x");
  EXPECT_DEATH(index.Lookup("x", 0.0), "CHECK failed");
  EXPECT_DEATH(index.name(5), "CHECK failed");
}

}  // namespace
}  // namespace distinct
