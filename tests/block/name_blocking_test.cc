#include "block/name_blocking.h"

#include <gtest/gtest.h>

#include "dblp/schema.h"

namespace distinct {
namespace {

Database MakeDbWithNames(const std::vector<std::string>& names) {
  auto db = MakeEmptyDblpDatabase();
  DISTINCT_CHECK(db.ok());
  Table* authors = *db->FindMutableTable(kAuthorsTable);
  for (size_t i = 0; i < names.size(); ++i) {
    DISTINCT_CHECK(authors
                       ->AppendRow({Value::Int(static_cast<int64_t>(i)),
                                    Value::Str(names[i])})
                       .ok());
  }
  return *std::move(db);
}

TEST(NameBlockingTest, GroupsSpellingVariants) {
  Database db = MakeDbWithNames(
      {"Wei Wang", "Wei  Wang", "WEI WANG", "Bing Liu", "Jim Smith"});
  auto blocks = BlockSimilarNames(db, DblpReferenceSpec());
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 1u);  // only the Wei Wang variants block
  EXPECT_EQ((*blocks)[0].names.size(), 3u);
  EXPECT_EQ((*blocks)[0].name_rows, (std::vector<int64_t>{0, 1, 2}));
}

TEST(NameBlockingTest, SingletonsOptional) {
  Database db = MakeDbWithNames({"Wei Wang", "Bing Liu"});
  BlockingOptions options;
  auto blocks = BlockSimilarNames(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(blocks.ok());
  EXPECT_TRUE(blocks->empty());

  options.include_singletons = true;
  blocks = BlockSimilarNames(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(blocks->size(), 2u);
}

TEST(NameBlockingTest, TransitiveChainsFormOneBlock) {
  // A~B and B~C should land in one component even if A!~C directly.
  Database db = MakeDbWithNames(
      {"Jonathan Smith", "Jonathon Smith", "Jonathon Smyth"});
  BlockingOptions options;
  options.threshold = 0.55;
  auto blocks = BlockSimilarNames(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 1u);
  EXPECT_EQ((*blocks)[0].names.size(), 3u);
}

TEST(NameBlockingTest, ThresholdValidation) {
  Database db = MakeDbWithNames({"A B"});
  BlockingOptions options;
  options.threshold = 0.0;
  EXPECT_FALSE(BlockSimilarNames(db, DblpReferenceSpec(), options).ok());
  options.threshold = 1.5;
  EXPECT_FALSE(BlockSimilarNames(db, DblpReferenceSpec(), options).ok());
}

TEST(NameBlockingTest, OrderedByBlockSize) {
  Database db = MakeDbWithNames({"Jim Smith", "Jim  Smith", "Wei Wang",
                                 "Wei  Wang", "WEI WANG", "Solo Name"});
  auto blocks = BlockSimilarNames(db, DblpReferenceSpec());
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 2u);
  EXPECT_EQ((*blocks)[0].names.size(), 3u);  // Wei Wang x3 first
  EXPECT_EQ((*blocks)[1].names.size(), 2u);
}

TEST(NameBlockingTest, EmptyNameTable) {
  Database db = MakeDbWithNames({});
  auto blocks = BlockSimilarNames(db, DblpReferenceSpec());
  ASSERT_TRUE(blocks.ok());
  EXPECT_TRUE(blocks->empty());
}

}  // namespace
}  // namespace distinct
