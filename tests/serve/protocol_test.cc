#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace distinct {
namespace serve {
namespace {

TEST(ParseRequestTest, ResolveNameRoundTrips) {
  auto request = ParseRequest(
      R"({"id":7,"method":"resolve_name","name":"Wei Wang","deadline_ms":250})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->id, 7);
  EXPECT_EQ(request->method, Method::kResolveName);
  EXPECT_EQ(request->name, "Wei Wang");
  EXPECT_EQ(request->deadline_ms, 250);
}

TEST(ParseRequestTest, ClassifyRowRoundTrips) {
  auto request =
      ParseRequest(R"({"id":2,"method":"classify_row","row":17})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->method, Method::kClassifyRow);
  EXPECT_EQ(request->row, 17);
  EXPECT_EQ(request->deadline_ms, 0);
}

TEST(ParseRequestTest, StatsAndHealthNeedNoPayload) {
  for (const char* method : {"stats", "health"}) {
    auto request = ParseRequest(std::string(R"({"id":1,"method":")") +
                                method + R"("})");
    ASSERT_TRUE(request.ok()) << method << ": "
                              << request.status().ToString();
  }
}

TEST(ParseRequestTest, MalformedJsonIsInvalidArgument) {
  for (const char* line :
       {"", "not json", "{", R"({"id":1)", "[1,2,3]", "42", "\"x\""}) {
    auto request = ParseRequest(line);
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument)
        << "line: " << line;
  }
}

TEST(ParseRequestTest, UnknownOrMistypedFieldsRejected) {
  // Unknown method.
  EXPECT_EQ(ParseRequest(R"({"id":1,"method":"explode"})").status().code(),
            StatusCode::kInvalidArgument);
  // Method not a string.
  EXPECT_EQ(ParseRequest(R"({"id":1,"method":4})").status().code(),
            StatusCode::kInvalidArgument);
  // resolve_name without a name.
  EXPECT_EQ(ParseRequest(R"({"id":1,"method":"resolve_name"})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // classify_row without a row, and with a negative row.
  EXPECT_EQ(ParseRequest(R"({"id":1,"method":"classify_row"})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest(R"({"id":1,"method":"classify_row","row":-3})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ParseRequestTest, DeadlineIsCappedNotClamped) {
  auto at_cap = ParseRequest(
      R"({"id":1,"method":"resolve_name","name":"x","deadline_ms":60000})");
  EXPECT_TRUE(at_cap.ok());
  auto over = ParseRequest(
      R"({"id":1,"method":"resolve_name","name":"x","deadline_ms":60001})");
  EXPECT_EQ(over.status().code(), StatusCode::kInvalidArgument);
  auto negative = ParseRequest(
      R"({"id":1,"method":"resolve_name","name":"x","deadline_ms":-1})");
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);
}

ResolveAnswer TwoClusterAnswer() {
  ResolveAnswer answer;
  answer.refs = {4, 9, 11};
  answer.clustering.assignment = {0, 1, 0};
  answer.clustering.num_clusters = 2;
  MergeStep merge;
  merge.into = 0;
  merge.from = 2;
  merge.similarity = 0.25;
  answer.clustering.merges = {merge};
  return answer;
}

TEST(ResponseJsonTest, AnswerCarriesRefsAssignmentAndMerges) {
  const std::string json = AnswerResponseJson(
      7, Method::kResolveName, "Wei Wang", TwoClusterAnswer());
  EXPECT_EQ(json,
            R"({"id":7,"ok":true,"method":"resolve_name",)"
            R"("name":"Wei Wang","refs":[4,9,11],"assignment":[0,1,0],)"
            R"("num_clusters":2,"merges":[[0,2,0.25]]})");
}

TEST(ResponseJsonTest, ClassifyAnswerAddsRowAndCluster) {
  const std::string json = AnswerResponseJson(
      3, Method::kClassifyRow, "Wei Wang", TwoClusterAnswer(), 9, 1);
  EXPECT_NE(json.find(R"("row":9,"cluster":1)"), std::string::npos) << json;
}

TEST(ResponseJsonTest, MergeSimilarityRoundTripsBitExactly) {
  ResolveAnswer answer = TwoClusterAnswer();
  // A value with no short decimal representation must survive %.17g.
  answer.clustering.merges[0].similarity = 0.1068840782005151;
  const std::string json =
      AnswerResponseJson(1, Method::kResolveName, "x", answer);
  EXPECT_NE(json.find("0.1068840782005151"), std::string::npos) << json;
}

TEST(ResponseJsonTest, ErrorCarriesCodeAndOptionalRetryHint) {
  const std::string plain =
      ErrorResponseJson(5, NotFoundError("serve: no such name"));
  EXPECT_EQ(plain,
            R"({"id":5,"ok":false,"error":{"code":"not_found",)"
            R"("message":"serve: no such name"}})");
  const std::string hinted =
      ErrorResponseJson(6, ResourceExhaustedError("busy"), 50);
  EXPECT_NE(hinted.find(R"("code":"overloaded")"), std::string::npos);
  EXPECT_NE(hinted.find(R"("retry_after_ms":50)"), std::string::npos);
}

TEST(ResponseJsonTest, ObjectResponseSplicesPayload) {
  EXPECT_EQ(ObjectResponseJson(9, "stats", R"({"queries":3})"),
            R"({"id":9,"ok":true,"stats":{"queries":3}})");
}

TEST(WireErrorCodeTest, MapsEveryServingCode) {
  EXPECT_STREQ(WireErrorCode(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(WireErrorCode(StatusCode::kOutOfRange), "invalid_argument");
  EXPECT_STREQ(WireErrorCode(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(WireErrorCode(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(WireErrorCode(StatusCode::kResourceExhausted), "overloaded");
  EXPECT_STREQ(WireErrorCode(StatusCode::kUnavailable), "unavailable");
  EXPECT_STREQ(WireErrorCode(StatusCode::kInternal), "internal");
  EXPECT_STREQ(WireErrorCode(StatusCode::kDataLoss), "internal");
}

}  // namespace
}  // namespace serve
}  // namespace distinct
