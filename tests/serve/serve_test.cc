// End-to-end coverage of the resident disambiguation service: the service
// layer (single-flight batching, deadlines, admission control, caching)
// and the socket transport (framing, malformed/oversized requests,
// graceful shutdown). The concurrency tests are what the TSan job
// race-checks (LABEL parallel).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "../test_util.h"
#include "common/io_util.h"
#include "core/distinct.h"
#include "obs/memory.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"

namespace distinct {
namespace serve {
namespace {

Distinct MiniEngine(const Database& db) {
  DistinctConfig config;
  config.supervised = false;
  config.promotions = DblpDefaultPromotions();
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  DISTINCT_CHECK(engine.ok());
  return *std::move(engine);
}

/// The batch answer serialized exactly as the server would serialize it.
std::string ExpectedResolveJson(Distinct& engine, int64_t id,
                                const std::string& name) {
  auto result = engine.ResolveName(name);
  DISTINCT_CHECK(result.ok());
  ResolveAnswer answer;
  answer.refs = result->refs;
  answer.clustering = result->clustering;
  return AnswerResponseJson(id, Method::kResolveName, name, answer);
}

TEST(ServeServiceTest, ResolveMatchesBatchByteForByte) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServeService service(engine, ServiceOptions{});
  const std::string got = service.HandleLine(
      R"({"id":7,"method":"resolve_name","name":"Wei Wang"})");
  EXPECT_EQ(got, ExpectedResolveJson(engine, 7, "Wei Wang"));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 1);
  EXPECT_EQ(stats.answered, 1);
}

TEST(ServeServiceTest, RepeatQueryIsServedFromCacheIdentically) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServeService service(engine, ServiceOptions{});
  const std::string first = service.HandleLine(
      R"({"id":1,"method":"resolve_name","name":"Wei Wang"})");
  const std::string second = service.HandleLine(
      R"({"id":1,"method":"resolve_name","name":"Wei Wang"})");
  EXPECT_EQ(first, second);
  EXPECT_EQ(service.stats().cache_hits, 1);
}

TEST(ServeServiceTest, UnknownNameIsNotFound) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServeService service(engine, ServiceOptions{});
  const std::string got = service.HandleLine(
      R"({"id":2,"method":"resolve_name","name":"Nobody"})");
  EXPECT_NE(got.find(R"("ok":false)"), std::string::npos) << got;
  EXPECT_NE(got.find(R"("code":"not_found")"), std::string::npos) << got;
  EXPECT_EQ(service.stats().not_found, 1);
}

TEST(ServeServiceTest, ClassifyRowReturnsTheRowsCluster) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServeService service(engine, ServiceOptions{});
  // Row 2 is Wei Wang's second reference.
  const std::string got = service.HandleLine(
      R"({"id":3,"method":"classify_row","row":2})");
  EXPECT_NE(got.find(R"("name":"Wei Wang")"), std::string::npos) << got;
  EXPECT_NE(got.find(R"("row":2,"cluster":)"), std::string::npos) << got;

  const std::string missing = service.HandleLine(
      R"({"id":4,"method":"classify_row","row":999})");
  EXPECT_NE(missing.find(R"("code":"not_found")"), std::string::npos)
      << missing;
}

TEST(ServeServiceTest, StatsAndHealthAnswer) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServeService service(engine, ServiceOptions{});
  const std::string health =
      service.HandleLine(R"({"id":1,"method":"health"})");
  EXPECT_NE(health.find(R"("status":"serving")"), std::string::npos)
      << health;
  EXPECT_NE(health.find(R"("protocol":1)"), std::string::npos) << health;
  const std::string stats =
      service.HandleLine(R"({"id":2,"method":"stats"})");
  EXPECT_NE(stats.find(R"("queries")"), std::string::npos) << stats;
}

TEST(ServeServiceTest, ExpiredDeadlineIsRejectedAndNeverCached) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServeService service(engine, ServiceOptions{});
  auto late = service.ResolveNameAt(
      "Wei Wang", std::chrono::steady_clock::time_point::min());
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().deadline_exceeded, 1);
  EXPECT_EQ(service.stats().cache_entries, 0);
  // The failure poisoned nothing: the same name then resolves normally.
  auto fine = service.ResolveNameAt(
      "Wei Wang", std::chrono::steady_clock::time_point::max());
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
}

TEST(ServeServiceTest, AdmissionRejectsWhenStandingBytesExceedBudget) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServiceOptions options;
  options.memory_budget_mb = 1;
  ServeService service(engine, options);
  // Inflate the standing tracked bytes past the 1 MiB budget; admission
  // must reject with the overloaded code and a retry hint, and the peak
  // metric must stay within budget (nothing was admitted).
  auto& tracker = obs::MemoryTracker::Global();
  tracker.Add(obs::MemoryTracker::kPairMatrix, 2 << 20);
  const std::string got = service.HandleLine(
      R"({"id":5,"method":"resolve_name","name":"Wei Wang"})");
  tracker.Add(obs::MemoryTracker::kPairMatrix, -(2 << 20));
  EXPECT_NE(got.find(R"("code":"overloaded")"), std::string::npos) << got;
  EXPECT_NE(got.find(R"("retry_after_ms")"), std::string::npos) << got;
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_memory, 1);
  EXPECT_LE(stats.admission_peak_bytes, int64_t{1} << 20);
  // With the pressure gone the same query is admitted.
  const std::string retry = service.HandleLine(
      R"({"id":6,"method":"resolve_name","name":"Wei Wang"})");
  EXPECT_NE(retry.find(R"("ok":true)"), std::string::npos) << retry;
}

TEST(ServeServiceTest, ConcurrentSameNameQueriesShareOneAnswer) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServiceOptions options;
  options.result_cache_entries = 0;  // force flights, not cache hits
  ServeService service(engine, options);
  const std::string expected = ExpectedResolveJson(engine, 1, "Wei Wang");
  constexpr int kThreads = 8;
  std::vector<std::string> responses(kThreads);
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&service, &responses, t] {
        responses[static_cast<size_t>(t)] = service.HandleLine(
            R"({"id":1,"method":"resolve_name","name":"Wei Wang"})");
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  for (const std::string& response : responses) {
    EXPECT_EQ(response, expected);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.answered, kThreads);
}

TEST(ServeServiceTest, ConcurrentDistinctNamesAllMatchBatch) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServiceOptions options;
  options.result_cache_entries = 0;
  ServeService service(engine, options);
  // Every published author in the mini database, resolved concurrently
  // over the shared memo/pool, must equal its batch answer. (Aidong Zhang
  // has no publish rows, hence no references to resolve.)
  const std::vector<std::string> names = {"Wei Wang", "Jiong Yang",
                                          "Jian Pei", "Haixun Wang"};
  std::vector<std::string> expected;
  for (size_t i = 0; i < names.size(); ++i) {
    expected.push_back(
        ExpectedResolveJson(engine, static_cast<int64_t>(i), names[i]));
  }
  std::vector<std::string> responses(names.size());
  {
    std::vector<std::thread> workers;
    for (size_t i = 0; i < names.size(); ++i) {
      workers.emplace_back([&service, &names, &responses, i] {
        responses[i] = service.HandleLine(
            R"({"id":)" + std::to_string(i) +
            R"(,"method":"resolve_name","name":")" + names[i] + R"("})");
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(responses[i], expected[i]) << names[i];
  }
}

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DISTINCT_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  DISTINCT_CHECK(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
  DISTINCT_CHECK(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0);
  return fd;
}

TEST(ServeServerTest, AnswersOverALoopbackSocket) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServeService service(engine, ServiceOptions{});
  ServeServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  const int fd = ConnectLoopback(server.port());
  FdLineReader reader(fd, kMaxRequestBytes, "test");
  std::string line;
  bool eof = false;

  ASSERT_TRUE(WriteFdAll(fd, "{\"id\":1,\"method\":\"health\"}\n", "test")
                  .ok());
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_NE(line.find(R"("ok":true)"), std::string::npos) << line;

  ASSERT_TRUE(
      WriteFdAll(fd,
                 "{\"id\":2,\"method\":\"resolve_name\","
                 "\"name\":\"Wei Wang\"}\n",
                 "test")
          .ok());
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_EQ(line, ExpectedResolveJson(engine, 2, "Wei Wang"));

  // Malformed request: an error response, connection stays usable.
  ASSERT_TRUE(WriteFdAll(fd, "not json\n", "test").ok());
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_NE(line.find(R"("code":"invalid_argument")"), std::string::npos)
      << line;
  ASSERT_TRUE(WriteFdAll(fd, "{\"id\":3,\"method\":\"health\"}\n", "test")
                  .ok());
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_NE(line.find(R"("ok":true)"), std::string::npos) << line;

  ::close(fd);
  server.Shutdown();
  EXPECT_EQ(server.connections(), 0);
}

TEST(ServeServerTest, OversizedRequestGetsErrorThenClose) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServeService service(engine, ServiceOptions{});
  ServeServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const int fd = ConnectLoopback(server.port());
  // One newline-less request beyond the per-line cap: the server must
  // answer with a single error line and drop the connection instead of
  // buffering without bound.
  const std::string flood(kMaxRequestBytes + 16, 'x');
  ASSERT_TRUE(WriteFdAll(fd, flood, "test").ok());
  FdLineReader reader(fd, kMaxRequestBytes + 64, "test");
  std::string line;
  bool eof = false;
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  ASSERT_FALSE(eof);
  EXPECT_NE(line.find(R"("ok":false)"), std::string::npos) << line;
  // Then EOF: the connection is gone.
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_TRUE(eof);
  ::close(fd);
  server.Shutdown();
}

TEST(ServeServerTest, ConcurrentClientsGetBitIdenticalAnswers) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServiceOptions options;
  options.result_cache_entries = 0;  // every request computes or coalesces
  ServeService service(engine, options);
  ServeServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::string> names = {"Wei Wang", "Jiong Yang",
                                          "Jian Pei"};
  std::vector<std::string> expected;
  for (const std::string& name : names) {
    expected.push_back(ExpectedResolveJson(engine, 1, name));
  }

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 6;
  std::atomic<int> mismatches{0};
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        const int fd = ConnectLoopback(server.port());
        FdLineReader reader(fd, kMaxRequestBytes, "test");
        std::string line;
        bool eof = false;
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const size_t idx =
              (static_cast<size_t>(c) + static_cast<size_t>(q)) %
              names.size();
          const std::string request =
              R"({"id":1,"method":"resolve_name","name":")" + names[idx] +
              "\"}\n";
          if (!WriteFdAll(fd, request, "test").ok() ||
              !reader.ReadLine(&line, &eof).ok() || eof ||
              line != expected[idx]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        ::close(fd);
      });
    }
    for (std::thread& client : clients) {
      client.join();
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
  server.Shutdown();
  EXPECT_EQ(server.connections(), 0);
}

TEST(ServeServerTest, ShutdownIsIdempotentAndStopsAccepting) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  ServeService service(engine, ServiceOptions{});
  auto server = std::make_unique<ServeServer>(&service, ServerOptions{});
  ASSERT_TRUE(server->Start().ok());
  server->Shutdown();
  server->Shutdown();  // second call is a no-op
  server.reset();      // destructor after explicit Shutdown is safe
}

}  // namespace
}  // namespace serve
}  // namespace distinct
