#include "common/text_table.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(TextTableTest, RendersHeaderAndRule) {
  TextTable table({"name", "value"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name  value"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTableTest, ColumnsAlign) {
  TextTable table({"a", "b"});
  table.AddRow({"longcell", "x"});
  table.AddRow({"s", "y"});
  const std::string out = table.Render();
  // Both data rows place column b at the same offset.
  const size_t first_row = out.find("longcell");
  const size_t second_row = out.find("s", first_row + 8);
  ASSERT_NE(first_row, std::string::npos);
  ASSERT_NE(second_row, std::string::npos);
  const size_t x_col = out.find('x', first_row) - first_row;
  const size_t y_col = out.find('y', second_row) - second_row;
  EXPECT_EQ(x_col, y_col);
}

TEST(TextTableTest, RightAlignment) {
  TextTable table({"num"});
  table.SetRightAlign(0);
  table.AddRow({"5"});
  table.AddRow({"123"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("  5\n"), std::string::npos);
  EXPECT_NE(out.find("123\n"), std::string::npos);
}

TEST(TextTableTest, CountsRows) {
  TextTable table({"h"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"r1"});
  table.AddRow({"r2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TextTableTest, EndsWithNewline) {
  TextTable table({"h"});
  table.AddRow({"r"});
  const std::string out = table.Render();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
}

TEST(TextTableDeathTest, ArityMismatchAborts) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "CHECK failed");
}

}  // namespace
}  // namespace distinct
