#include "common/stopwatch.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(StopwatchTest, ElapsedNanosIsMonotonic) {
  Stopwatch watch;
  int64_t previous = watch.ElapsedNanos();
  EXPECT_GE(previous, 0);
  // Steady clock: successive reads never go backwards.
  for (int i = 0; i < 1000; ++i) {
    const int64_t now = watch.ElapsedNanos();
    ASSERT_GE(now, previous);
    previous = now;
  }
}

TEST(StopwatchTest, UnitsAgree) {
  Stopwatch watch;
  // Spin briefly so every reading is non-zero.
  volatile int sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + i;
  }
  const int64_t nanos = watch.ElapsedNanos();
  const double seconds = watch.Seconds();
  EXPECT_GT(nanos, 0);
  // Seconds() was read after ElapsedNanos(): at least as much time elapsed.
  EXPECT_GE(seconds, static_cast<double>(nanos) / 1e9);
  EXPECT_GE(watch.Millis(), seconds * 1e3);
}

TEST(StopwatchTest, ResetRestartsTheClock) {
  Stopwatch watch;
  volatile int sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + i;
  }
  const int64_t before = watch.ElapsedNanos();
  watch.Reset();
  const int64_t after = watch.ElapsedNanos();
  EXPECT_GT(before, 0);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace distinct
