#include "common/status.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("missing table");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing table");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing table");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InvalidArgumentError("x"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(InvalidArgumentError("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("m").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("m").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("m").code(), StatusCode::kInternal);
  EXPECT_EQ(DataLossError("m").code(), StatusCode::kDataLoss);
  EXPECT_EQ(DeadlineExceededError("m").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ResourceExhaustedError("m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("m").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = *std::move(result);
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result->size(), 5u);
}

TEST(StatusOrTest, MutableAccess) {
  StatusOr<std::string> result = std::string("a");
  *result += "b";
  EXPECT_EQ(result.value(), "ab");
}

Status FailInner() { return InvalidArgumentError("inner"); }

Status UseReturnIfError() {
  DISTINCT_RETURN_IF_ERROR(FailInner());
  return InternalError("unreachable");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UseReturnIfError().code(), StatusCode::kInvalidArgument);
}

Status UseReturnIfErrorOk() {
  DISTINCT_RETURN_IF_ERROR(Status::Ok());
  return InternalError("reached");
}

TEST(StatusMacroTest, ReturnIfErrorFallsThroughOnOk) {
  EXPECT_EQ(UseReturnIfErrorOk().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace distinct
