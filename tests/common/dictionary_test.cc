#include "common/dictionary.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(DictionaryTest, InternAssignsDenseIdsInOrder) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0);
  EXPECT_EQ(dict.Intern("b"), 1);
  EXPECT_EQ(dict.Intern("c"), 2);
  EXPECT_EQ(dict.size(), 3);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  const int64_t id = dict.Intern("x");
  EXPECT_EQ(dict.Intern("x"), id);
  EXPECT_EQ(dict.size(), 1);
}

TEST(DictionaryTest, LookupRoundTrips) {
  Dictionary dict;
  const int64_t a = dict.Intern("alpha");
  const int64_t b = dict.Intern("beta");
  EXPECT_EQ(dict.Lookup(a), "alpha");
  EXPECT_EQ(dict.Lookup(b), "beta");
}

TEST(DictionaryTest, FindWithoutInserting) {
  Dictionary dict;
  dict.Intern("present");
  EXPECT_EQ(dict.Find("present"), 0);
  EXPECT_FALSE(dict.Find("absent").has_value());
  EXPECT_EQ(dict.size(), 1);
}

TEST(DictionaryTest, EmptyStringIsAValidKey) {
  Dictionary dict;
  const int64_t id = dict.Intern("");
  EXPECT_EQ(dict.Lookup(id), "");
  EXPECT_EQ(dict.Find(""), id);
}

TEST(DictionaryTest, ManyStrings) {
  Dictionary dict;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dict.Intern("key" + std::to_string(i)), i);
  }
  EXPECT_EQ(dict.size(), 1000);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dict.Lookup(i), "key" + std::to_string(i));
  }
}

}  // namespace
}  // namespace distinct
