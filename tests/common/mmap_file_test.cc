#include "common/mmap_file.h"

#include <cstdio>
#include <string>

#include "common/io_util.h"
#include "gtest/gtest.h"

namespace distinct {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(MappedFileTest, MapsWrittenBytes) {
  const std::string path = TempPath("mmap_roundtrip.bin");
  const std::string payload("mapped bytes \0 with a NUL inside", 32);
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->view(), payload);
  std::remove(path.c_str());
}

TEST(MappedFileTest, MissingFileIsNotFound) {
  auto mapped = MappedFile::Open(TempPath("mmap_no_such_file.bin"));
  EXPECT_EQ(mapped.status().code(), StatusCode::kNotFound);
}

TEST(MappedFileTest, EmptyFileMapsToEmptyView) {
  const std::string path = TempPath("mmap_empty.bin");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->size(), 0u);
  std::remove(path.c_str());
}

TEST(MappedFileTest, MoveTransfersTheMapping) {
  const std::string path = TempPath("mmap_move.bin");
  ASSERT_TRUE(WriteStringToFile(path, "payload").ok());
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  MappedFile moved = *std::move(mapped);
  EXPECT_EQ(moved.view(), "payload");
  MappedFile assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.view(), "payload");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace distinct
