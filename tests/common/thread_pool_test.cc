#include "common/thread_pool.h"

#include <atomic>
#include <set>

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must finish everything.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksCanSubmitWork) {
  // Wait() counts re-submitted tasks as in-flight.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    pool.Submit([&counter] { counter.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) {
    h.store(0);
  }
  ParallelFor(pool, n, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(ParallelForTest, ZeroAndNegativeAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(pool, 0, [&](int64_t) { ++calls; });
  ParallelFor(pool, -5, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, WorksWithMoreThreadsThanItems) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  ParallelFor(pool, 3, [&](int64_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ParallelForTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 5; ++round) {
    ParallelFor(pool, 20, [&](int64_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 5 * (19 * 20 / 2));
}

}  // namespace
}  // namespace distinct
