#include "common/io_util.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

namespace distinct {
namespace {

std::string TempPath(const char* name) {
  const char* dir = ::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/distinct_io_" +
         name + "_" + std::to_string(::getpid());
}

TEST(FileIoTest, WriteThenReadRoundTrips) {
  const std::string path = TempPath("roundtrip");
  const std::string payload("line one\nline two\0embedded nul", 30);
  ASSERT_TRUE(WriteStringToFile(path, payload, "test").ok());
  auto read = ReadFileToString(path, "test");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsNotFound) {
  auto read = ReadFileToString(TempPath("never_written"), "test");
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
  // The context string survives into the message for actionable errors.
  EXPECT_NE(read.status().message().find("test"), std::string::npos);
}

TEST(FileIoTest, DurableWriteProducesSameBytes) {
  const std::string path = TempPath("durable");
  ASSERT_TRUE(WriteFileDurable(path, "checkpoint", "test").ok());
  auto read = ReadFileToString(path, "test");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "checkpoint");
  std::remove(path.c_str());
}

TEST(FdLineReaderTest, SplitsLinesAcrossPipeWrites) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Two writes that do not align with line boundaries.
  ASSERT_TRUE(WriteFdAll(fds[1], "alpha\nbe", "test").ok());
  ASSERT_TRUE(WriteFdAll(fds[1], "ta\ngamma", "test").ok());
  ::close(fds[1]);

  FdLineReader reader(fds[0], 1 << 10, "test");
  std::string line;
  bool eof = false;
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_EQ(line, "alpha");
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_EQ(line, "beta");
  // Final line is unterminated: still delivered, then EOF.
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_FALSE(eof);
  EXPECT_EQ(line, "gamma");
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_TRUE(eof);
  ::close(fds[0]);
}

TEST(FdLineReaderTest, EmptyLinesAreDelivered) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(WriteFdAll(fds[1], "\n\nx\n", "test").ok());
  ::close(fds[1]);
  FdLineReader reader(fds[0], 64, "test");
  std::string line;
  bool eof = false;
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_EQ(line, "");
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_EQ(line, "");
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_EQ(line, "x");
  ASSERT_TRUE(reader.ReadLine(&line, &eof).ok());
  EXPECT_TRUE(eof);
  ::close(fds[0]);
}

TEST(FdLineReaderTest, OversizedLineIsOutOfRange) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string flood(128, 'x');  // no newline, beyond the 64-byte cap
  ASSERT_TRUE(WriteFdAll(fds[1], flood, "test").ok());
  ::close(fds[1]);
  FdLineReader reader(fds[0], 64, "test");
  std::string line;
  bool eof = false;
  const Status status = reader.ReadLine(&line, &eof);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  ::close(fds[0]);
}

TEST(FdLineReaderTest, OversizedTerminatedLineAlsoRejected) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string flood = std::string(128, 'x') + "\n";
  ASSERT_TRUE(WriteFdAll(fds[1], flood, "test").ok());
  ::close(fds[1]);
  FdLineReader reader(fds[0], 64, "test");
  std::string line;
  bool eof = false;
  EXPECT_EQ(reader.ReadLine(&line, &eof).code(), StatusCode::kOutOfRange);
  ::close(fds[0]);
}

TEST(WriteFdAllTest, ClosedPipeIsUnavailableNotACrash) {
  IgnoreSigPipe();
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  const Status status =
      WriteFdAll(fds[1], "nobody is listening", "test");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  ::close(fds[1]);
}

}  // namespace
}  // namespace distinct
