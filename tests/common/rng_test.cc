#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, SplitMix64KnownValues) {
  // Reference values from the SplitMix64 reference implementation.
  uint64_t state = 0;
  const uint64_t first = SplitMix64Next(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(4, 4), 4);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformInt(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(21);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += rng.Poisson(3.5);
  }
  EXPECT_NEAR(total / n, 3.5, 0.1);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(8);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<size_t> sample = rng.SampleWithoutReplacement(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (const size_t s : sample) {
      EXPECT_LT(s, 20u);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(29);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(100, 1.1);
  double total = 0.0;
  for (size_t r = 0; r < zipf.size(); ++r) {
    total += zipf.Probability(r);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, ProbabilityDecreasesWithRank) {
  ZipfSampler zipf(50, 0.9);
  for (size_t r = 1; r < zipf.size(); ++r) {
    EXPECT_GT(zipf.Probability(r - 1), zipf.Probability(r));
  }
}

TEST(ZipfSamplerTest, SampleMatchesHeadProbability) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(31);
  int head = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) == 0) {
      ++head;
    }
  }
  EXPECT_NEAR(head / static_cast<double>(n), zipf.Probability(0), 0.01);
}

TEST(ZipfSamplerTest, SingleElement) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(1);
  EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_NEAR(zipf.Probability(0), 1.0, 1e-12);
}

/// Property sweep: UniformInt over several (lo, hi) ranges has correct mean.
class UniformIntRangeTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(UniformIntRangeTest, MeanIsCenterOfRange) {
  const auto [lo, hi] = GetParam();
  Rng rng(99);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const int64_t v = rng.UniformInt(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
    sum += static_cast<double>(v);
  }
  const double expected = (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
  const double span = static_cast<double>(hi - lo) + 1.0;
  EXPECT_NEAR(sum / n, expected, span * 0.02 + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, UniformIntRangeTest,
    ::testing::Values(std::make_pair<int64_t, int64_t>(0, 1),
                      std::make_pair<int64_t, int64_t>(-10, 10),
                      std::make_pair<int64_t, int64_t>(0, 999),
                      std::make_pair<int64_t, int64_t>(-1000, -900),
                      std::make_pair<int64_t, int64_t>(5, 5)));

}  // namespace
}  // namespace distinct
