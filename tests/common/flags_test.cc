#include "common/flags.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

FlagParser MakeParser() {
  FlagParser parser;
  parser.AddInt64("count", 10, "a count");
  parser.AddDouble("rate", 0.5, "a rate");
  parser.AddBool("verbose", false, "noise");
  parser.AddString("name", "default", "a name");
  return parser;
}

Status ParseArgs(FlagParser& parser, std::vector<const char*> args) {
  return parser.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, DefaultsApply) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {}).ok());
  EXPECT_EQ(parser.GetInt64("count"), 10);
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate"), 0.5);
  EXPECT_FALSE(parser.GetBool("verbose"));
  EXPECT_EQ(parser.GetString("name"), "default");
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--count=3", "--rate=0.25",
                                 "--name=wei wang", "--verbose=true"})
                  .ok());
  EXPECT_EQ(parser.GetInt64("count"), 3);
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate"), 0.25);
  EXPECT_EQ(parser.GetString("name"), "wei wang");
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagsTest, SpaceSeparatedValue) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--count", "7", "--name", "x"}).ok());
  EXPECT_EQ(parser.GetInt64("count"), 7);
  EXPECT_EQ(parser.GetString("name"), "x");
}

TEST(FlagsTest, BareBooleanAndNegation) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--verbose"}).ok());
  EXPECT_TRUE(parser.GetBool("verbose"));

  FlagParser parser2 = MakeParser();
  ASSERT_TRUE(ParseArgs(parser2, {"--verbose", "--no-verbose"}).ok());
  EXPECT_FALSE(parser2.GetBool("verbose"));
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"input.xml", "--count=1", "out.txt"}).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"input.xml", "out.txt"}));
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagParser parser = MakeParser();
  const Status status = ParseArgs(parser, {"--bogus=1"});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bogus"), std::string::npos);
}

TEST(FlagsTest, MalformedValueIsError) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(ParseArgs(parser, {"--count=abc"}).ok());
  FlagParser parser2 = MakeParser();
  EXPECT_FALSE(ParseArgs(parser2, {"--rate=zz"}).ok());
  FlagParser parser3 = MakeParser();
  EXPECT_FALSE(ParseArgs(parser3, {"--verbose=maybe"}).ok());
}

TEST(FlagsTest, MissingValueIsError) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(ParseArgs(parser, {"--count"}).ok());
}

TEST(FlagsTest, HelpListsFlagsAndDefaults) {
  FlagParser parser = MakeParser();
  const std::string help = parser.Help();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("default 10"), std::string::npos);
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("\"default\""), std::string::npos);
}

TEST(FlagsRangeTest, InRangeAcceptsBoundsInclusive) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--count=10", "--rate=1.0"}).ok());
  auto count = parser.GetInt64InRange("count", 10, 10);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 10);
  auto narrow = parser.GetIntInRange("count", 1, 64);
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(*narrow, 10);
  auto rate = parser.GetDoubleInRange("rate", 0.0, 1.0);
  ASSERT_TRUE(rate.ok());
  EXPECT_DOUBLE_EQ(*rate, 1.0);
}

TEST(FlagsRangeTest, OutOfRangeValuesAreRejectedWithTheFlagName) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--count=0", "--rate=1.5"}).ok());
  const Status low = parser.GetInt64InRange("count", 1, 4096).status();
  EXPECT_EQ(low.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(low.message().find("count"), std::string::npos) << low.ToString();
  EXPECT_EQ(parser.GetDoubleInRange("rate", 0.0, 1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagsRangeTest, IntInRangeRejectsValuesBeyondInt) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--count=4294967296"}).ok());  // 2^32
  EXPECT_EQ(
      parser.GetIntInRange("count", 0, 2147483647).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(FlagsRangeTest, NanNeverPassesARangeCheck) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--rate=nan"}).ok());
  // NaN compares false against both bounds; the getter must reject it
  // rather than let it sail through an in-range comparison.
  EXPECT_EQ(parser.GetDoubleInRange("rate", 0.0, 1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BoolAcceptsNumericLiterals) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--verbose=1"}).ok());
  EXPECT_TRUE(parser.GetBool("verbose"));
  FlagParser parser2 = MakeParser();
  ASSERT_TRUE(ParseArgs(parser2, {"--verbose=0"}).ok());
  EXPECT_FALSE(parser2.GetBool("verbose"));
}

}  // namespace
}  // namespace distinct
