#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>

namespace distinct {
namespace {

/// Restores the process verbosity after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogVerbosity(); }
  void TearDown() override { SetLogVerbosity(previous_); }

 private:
  int previous_ = 0;
};

TEST_F(LoggingTest, VerbosityGatesSeverities) {
  using internal_logging::LogEnabled;

  SetLogVerbosity(0);
  EXPECT_FALSE(LogEnabled(LogSeverity::kDebug));
  EXPECT_FALSE(LogEnabled(LogSeverity::kInfo));
  EXPECT_TRUE(LogEnabled(LogSeverity::kWarn));
  EXPECT_TRUE(LogEnabled(LogSeverity::kError));

  SetLogVerbosity(1);
  EXPECT_FALSE(LogEnabled(LogSeverity::kDebug));
  EXPECT_TRUE(LogEnabled(LogSeverity::kInfo));

  SetLogVerbosity(2);
  EXPECT_TRUE(LogEnabled(LogSeverity::kDebug));
  EXPECT_TRUE(LogEnabled(LogSeverity::kInfo));
}

TEST_F(LoggingTest, SuppressedStreamIsNotEvaluated) {
  SetLogVerbosity(0);
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return "side effect";
  };
  DISTINCT_LOG(INFO) << touch();
  EXPECT_EQ(evaluations, 0);

  SetLogVerbosity(1);
  ::testing::internal::CaptureStderr();
  DISTINCT_LOG(INFO) << touch();
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(output.find("side effect"), std::string::npos);
}

TEST_F(LoggingTest, MessagesCarrySeverityTagAndLocation) {
  SetLogVerbosity(1);
  ::testing::internal::CaptureStderr();
  DISTINCT_LOG(INFO) << "info line";
  DISTINCT_LOG(WARN) << "warn line";
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("[I "), std::string::npos);
  EXPECT_NE(output.find("[W "), std::string::npos);
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(output.find("info line"), std::string::npos);
  EXPECT_NE(output.find("warn line"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesQuietly) {
  DISTINCT_CHECK(1 + 1 == 2);  // must not abort or print
  SUCCEED();
}

}  // namespace
}  // namespace distinct
