#include "common/crc32.h"

#include <string>

#include "gtest/gtest.h"

namespace distinct {
namespace {

TEST(Crc32cTest, KnownVector) {
  // The CRC-32C check value from RFC 3720 §B.4 ("123456789").
  EXPECT_EQ(Crc32c(std::string_view("123456789")), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(std::string_view("")), 0u);
}

TEST(Crc32cTest, ChunkedUpdatesComposeToWholeBufferValue) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog 0123456789";
  const uint32_t whole = Crc32c(std::string_view(data));
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t first = Crc32c(data.data(), split);
    const uint32_t chunked = Crc32c(data.data() + split,
                                    data.size() - split, first);
    EXPECT_EQ(chunked, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, AccumulatorMatchesOneShot) {
  const std::string data(10000, 'x');
  Crc32cAccumulator accumulator;
  accumulator.Update(data.data(), 1);
  accumulator.Update(data.data() + 1, 4095);
  accumulator.Update(data.data() + 4096, data.size() - 4096);
  EXPECT_EQ(accumulator.value(), Crc32c(std::string_view(data)));
  accumulator.Reset();
  EXPECT_EQ(accumulator.value(), 0u);
}

TEST(Crc32cTest, SingleBitFlipChangesValue) {
  std::string data = "columnar catalog segment payload";
  const uint32_t before = Crc32c(std::string_view(data));
  data[7] ^= 0x01;
  EXPECT_NE(Crc32c(std::string_view(data)), before);
}

}  // namespace
}  // namespace distinct
