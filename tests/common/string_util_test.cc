#include "common/string_util.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(SplitTest, KeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, SkipEmptyDropsThem) {
  EXPECT_EQ(SplitSkipEmpty(",a,,b,", ','),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitSkipEmpty("", ',').empty());
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(Join(pieces, ","), "x,y,z");
  EXPECT_EQ(Split(Join(pieces, ","), ','), pieces);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(PrefixSuffixTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ToLowerAsciiTest, LowersOnlyAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo 123"), "hello 123");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(ParseInt64Test, ValidInputs) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-17"), -17);
  EXPECT_EQ(ParseInt64("  8 "), 8);
  EXPECT_EQ(ParseInt64("0"), 0);
}

TEST(ParseInt64Test, InvalidInputs) {
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("abc").has_value());
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("1.5").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").has_value());
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(*ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e-3"), -2e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 7 "), 7.0);
}

TEST(ParseDoubleTest, InvalidInputs) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("x").has_value());
  EXPECT_FALSE(ParseDouble("1.5.2").has_value());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_string(500, 'a');
  EXPECT_EQ(StrFormat("%s", long_string.c_str()).size(), 500u);
}

TEST(NamePartsTest, FirstAndLast) {
  EXPECT_EQ(FirstNameOf("Wei Wang"), "Wei");
  EXPECT_EQ(LastNameOf("Wei Wang"), "Wang");
  EXPECT_EQ(FirstNameOf("Philip S. Yu"), "Philip");
  EXPECT_EQ(LastNameOf("Philip S. Yu"), "Yu");
  EXPECT_EQ(FirstNameOf("Plato"), "Plato");
  EXPECT_EQ(LastNameOf("Plato"), "Plato");
  EXPECT_EQ(FirstNameOf("  Jim Smith  "), "Jim");
  EXPECT_EQ(LastNameOf(""), "");
}

}  // namespace
}  // namespace distinct
