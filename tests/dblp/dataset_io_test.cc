#include "dblp/dataset_io.h"

#include <cstdio>
#include <filesystem>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "dblp/schema.h"
#include "dblp/stats.h"

namespace distinct {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  DatasetIoTest() {
    // ctest runs each case as its own process in parallel; the directory
    // must be unique per process AND per test to avoid collisions.
    dir_ = ::testing::TempDir() + "/dataset_io_test_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    GeneratorConfig config;
    config.seed = 13;
    config.num_communities = 6;
    config.authors_per_community = 8;
    config.papers_per_community_year = 3.0;
    config.ambiguous = {{"Wei Wang", 3, 12}, {"Bin Yu", 2, 6}};
    auto dataset = GenerateDblpDataset(config);
    DISTINCT_CHECK(dataset.ok());
    dataset_ = std::make_unique<DblpDataset>(*std::move(dataset));
  }

  ~DatasetIoTest() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::unique_ptr<DblpDataset> dataset_;
};

TEST_F(DatasetIoTest, RoundTripPreservesDatabase) {
  ASSERT_TRUE(SaveDataset(*dataset_, dir_).ok());
  auto loaded = LoadDataset(dir_);
  ASSERT_TRUE(loaded.ok());

  auto original_stats = ComputeDblpStats(dataset_->db);
  auto loaded_stats = ComputeDblpStats(loaded->db);
  ASSERT_TRUE(original_stats.ok() && loaded_stats.ok());
  EXPECT_EQ(loaded_stats->num_author_names,
            original_stats->num_author_names);
  EXPECT_EQ(loaded_stats->num_papers, original_stats->num_papers);
  EXPECT_EQ(loaded_stats->num_references, original_stats->num_references);
  EXPECT_TRUE(loaded->db.ValidateIntegrity().ok());
}

TEST_F(DatasetIoTest, RoundTripPreservesCases) {
  ASSERT_TRUE(SaveDataset(*dataset_, dir_).ok());
  auto loaded = LoadDataset(dir_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->cases.size(), dataset_->cases.size());
  for (size_t c = 0; c < loaded->cases.size(); ++c) {
    EXPECT_EQ(loaded->cases[c].name, dataset_->cases[c].name);
    EXPECT_EQ(loaded->cases[c].num_entities,
              dataset_->cases[c].num_entities);
    EXPECT_EQ(loaded->cases[c].publish_rows,
              dataset_->cases[c].publish_rows);
    EXPECT_EQ(loaded->cases[c].truth, dataset_->cases[c].truth);
    EXPECT_EQ(loaded->cases[c].entity_names,
              dataset_->cases[c].entity_names);
  }
}

TEST_F(DatasetIoTest, LoadedDatasetSupportsTheFullPipeline) {
  ASSERT_TRUE(SaveDataset(*dataset_, dir_).ok());
  auto loaded = LoadDataset(dir_);
  ASSERT_TRUE(loaded.ok());

  DistinctConfig config;
  config.supervised = false;
  config.promotions = DblpDefaultPromotions();
  auto engine = Distinct::Create(loaded->db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());
  auto evaluations = EvaluateCases(*engine, loaded->cases);
  ASSERT_TRUE(evaluations.ok());
  EXPECT_EQ(evaluations->size(), 2u);
}

TEST_F(DatasetIoTest, TruthMapCoversCaseRowsOnly) {
  ASSERT_TRUE(SaveDataset(*dataset_, dir_).ok());
  auto loaded = LoadDataset(dir_);
  ASSERT_TRUE(loaded.ok());
  // 3 + 2 case entities.
  EXPECT_EQ(loaded->num_entities, 5);
  int labeled = 0;
  for (const int entity : loaded->entity_of_publish_row) {
    if (entity >= 0) {
      ++labeled;
      EXPECT_LT(entity, 5);
    }
  }
  EXPECT_EQ(labeled, 12 + 6);
}

TEST_F(DatasetIoTest, LoadFromMissingDirectoryFails) {
  EXPECT_FALSE(LoadDataset("/no/such/dir").ok());
  EXPECT_FALSE(LoadDblpDatabaseCsv("/no/such/dir").ok());
  EXPECT_FALSE(LoadCasesCsv("/no/such/dir").ok());
}

}  // namespace
}  // namespace distinct
