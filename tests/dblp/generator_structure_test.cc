// Statistical checks that the generator actually produces the structural
// properties DESIGN.md §5 claims — the properties DISTINCT's accuracy
// rests on. These are aggregate assertions with generous margins, not
// exact-value golden tests.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "dblp/generator.h"
#include "dblp/schema.h"

namespace distinct {
namespace {

class StructureTest : public ::testing::Test {
 protected:
  StructureTest() {
    GeneratorConfig config;  // full-size default world
    config.seed = 4242;
    auto dataset = GenerateDblpDataset(config);
    DISTINCT_CHECK(dataset.ok());
    dataset_ = std::make_unique<DblpDataset>(*std::move(dataset));

    const Table& publish = **dataset_->db.FindTable(kPublishTable);
    const int paper_col = *publish.ColumnIndex("paper_id");
    for (int64_t row = 0; row < publish.num_rows(); ++row) {
      const int64_t paper = publish.GetInt(row, paper_col);
      const int entity =
          dataset_->entity_of_publish_row[static_cast<size_t>(row)];
      authors_of_paper_[paper].push_back(entity);
      papers_of_entity_[entity].push_back(paper);
    }
    const Table& publications = **dataset_->db.FindTable(kPublicationsTable);
    const Table& proceedings = **dataset_->db.FindTable(kProceedingsTable);
    const int proc_col = *publications.ColumnIndex("proc_id");
    const int conf_col = *proceedings.ColumnIndex("conf_id");
    for (int64_t paper = 0; paper < publications.num_rows(); ++paper) {
      const int64_t proc = publications.GetInt(paper, proc_col);
      const int64_t proc_row = *proceedings.RowForPrimaryKey(proc);
      conference_of_paper_[paper] = proceedings.GetInt(proc_row, conf_col);
    }
  }

  /// Fraction of (paper, paper) pairs of one entity sharing >= 1 coauthor.
  double CoauthorShareRate(int entity) const {
    const auto& papers = papers_of_entity_.at(entity);
    int64_t shared = 0;
    int64_t total = 0;
    for (size_t a = 0; a < papers.size(); ++a) {
      for (size_t b = a + 1; b < papers.size(); ++b) {
        ++total;
        std::set<int> coauthors_a;
        for (const int author : authors_of_paper_.at(papers[a])) {
          if (author != entity) coauthors_a.insert(author);
        }
        bool any = false;
        for (const int author : authors_of_paper_.at(papers[b])) {
          if (author != entity && coauthors_a.contains(author)) {
            any = true;
          }
        }
        shared += any ? 1 : 0;
      }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(shared) /
                            static_cast<double>(total);
  }

  std::unique_ptr<DblpDataset> dataset_;
  std::map<int64_t, std::vector<int>> authors_of_paper_;
  std::map<int, std::vector<int64_t>> papers_of_entity_;
  std::map<int64_t, int64_t> conference_of_paper_;
};

TEST_F(StructureTest, RecurringCollaboratorsLinkOneEntitysPapers) {
  // Averaged over the planted Wei Wang entities with enough papers, a
  // clear majority of same-entity paper pairs share a coauthor.
  const AmbiguousCase* wei = nullptr;
  for (const AmbiguousCase& c : dataset_->cases) {
    if (c.name == "Wei Wang") wei = &c;
  }
  ASSERT_NE(wei, nullptr);
  std::set<int> entities;
  for (size_t i = 0; i < wei->publish_rows.size(); ++i) {
    entities.insert(dataset_->entity_of_publish_row[static_cast<size_t>(
        wei->publish_rows[i])]);
  }
  double rate_sum = 0.0;
  int counted = 0;
  for (const int entity : entities) {
    if (papers_of_entity_.at(entity).size() >= 8) {
      rate_sum += CoauthorShareRate(entity);
      ++counted;
    }
  }
  ASSERT_GT(counted, 0);
  EXPECT_GT(rate_sum / counted, 0.35);
}

TEST_F(StructureTest, CrossEntityCoauthorSharingIsRare) {
  // Two different same-name entities share coauthors far less often.
  const AmbiguousCase* wei = nullptr;
  for (const AmbiguousCase& c : dataset_->cases) {
    if (c.name == "Wei Wang") wei = &c;
  }
  ASSERT_NE(wei, nullptr);
  int64_t shared = 0;
  int64_t total = 0;
  for (size_t i = 0; i < wei->publish_rows.size(); ++i) {
    for (size_t j = i + 1; j < wei->publish_rows.size(); ++j) {
      if (wei->truth[i] == wei->truth[j]) continue;
      const Table& publish = **dataset_->db.FindTable(kPublishTable);
      const int paper_col = *publish.ColumnIndex("paper_id");
      const int64_t pa = publish.GetInt(wei->publish_rows[i], paper_col);
      const int64_t pb = publish.GetInt(wei->publish_rows[j], paper_col);
      std::set<int> a(authors_of_paper_.at(pa).begin(),
                      authors_of_paper_.at(pa).end());
      bool any = false;
      for (const int author : authors_of_paper_.at(pb)) {
        if (a.contains(author) &&
            author != dataset_->entity_of_publish_row[static_cast<size_t>(
                          wei->publish_rows[i])]) {
          any = true;
        }
      }
      shared += any ? 1 : 0;
      ++total;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_LT(static_cast<double>(shared) / static_cast<double>(total), 0.05);
}

TEST_F(StructureTest, VenueLoyaltyConcentratesAnEntitysPapers) {
  // For each prolific entity, the top-2 conferences should hold a clear
  // majority of its papers.
  int checked = 0;
  double share_sum = 0.0;
  for (const auto& [entity, papers] : papers_of_entity_) {
    if (papers.size() < 15) continue;
    std::map<int64_t, int> venue_counts;
    for (const int64_t paper : papers) {
      ++venue_counts[conference_of_paper_.at(paper)];
    }
    std::vector<int> counts;
    for (const auto& [venue, count] : venue_counts) {
      counts.push_back(count);
    }
    std::sort(counts.rbegin(), counts.rend());
    int top2 = counts[0] + (counts.size() > 1 ? counts[1] : 0);
    share_sum += static_cast<double>(top2) /
                 static_cast<double>(papers.size());
    ++checked;
    if (checked >= 100) break;
  }
  ASSERT_GT(checked, 20);
  EXPECT_GT(share_sum / checked, 0.5);
}

TEST_F(StructureTest, SkewedReferenceCountsAcrossEntities) {
  // Within the Wei Wang case, the most prolific entity has several times
  // the references of the least prolific (the paper's 57-vs-2 skew).
  const AmbiguousCase* wei = nullptr;
  for (const AmbiguousCase& c : dataset_->cases) {
    if (c.name == "Wei Wang") wei = &c;
  }
  ASSERT_NE(wei, nullptr);
  std::map<int, int> counts;
  for (const int t : wei->truth) {
    ++counts[t];
  }
  int min_count = 1 << 30;
  int max_count = 0;
  for (const auto& [entity, count] : counts) {
    min_count = std::min(min_count, count);
    max_count = std::max(max_count, count);
  }
  EXPECT_GE(max_count, 5 * min_count);
}

TEST_F(StructureTest, AuthorsHaveHeavyTailedProductivity) {
  // A few entities produce many papers, most produce few — Zipf-flavored
  // prolificness.
  std::vector<size_t> paper_counts;
  for (const auto& [entity, papers] : papers_of_entity_) {
    paper_counts.push_back(papers.size());
  }
  std::sort(paper_counts.rbegin(), paper_counts.rend());
  ASSERT_GT(paper_counts.size(), 100u);
  // Top decile accounts for well over its proportional share.
  size_t total = 0;
  for (const size_t c : paper_counts) total += c;
  size_t top_decile = 0;
  for (size_t i = 0; i < paper_counts.size() / 10; ++i) {
    top_decile += paper_counts[i];
  }
  EXPECT_GT(static_cast<double>(top_decile) / static_cast<double>(total),
            0.2);
}

}  // namespace
}  // namespace distinct
