#include "dblp/generator.h"

#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "dblp/schema.h"

namespace distinct {
namespace {

/// Small config so generator tests stay fast.
GeneratorConfig SmallConfig(uint64_t seed = 1) {
  GeneratorConfig config;
  config.seed = seed;
  config.num_communities = 8;
  config.authors_per_community = 10;
  config.papers_per_community_year = 5.0;
  config.start_year = 2000;
  config.end_year = 2006;
  config.ambiguous = {{"Wei Wang", 4, 30}, {"Bin Yu", 2, 10}};
  return config;
}

TEST(GeneratorTest, ReferentialIntegrityHolds) {
  auto dataset = GenerateDblpDataset(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset->db.ValidateIntegrity().ok());
}

TEST(GeneratorTest, AmbiguousCountsMatchSpecExactly) {
  auto dataset = GenerateDblpDataset(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  ASSERT_EQ(dataset->cases.size(), 2u);
  const AmbiguousCase& wei = dataset->cases[0];
  EXPECT_EQ(wei.name, "Wei Wang");
  EXPECT_EQ(wei.num_entities, 4);
  EXPECT_EQ(wei.publish_rows.size(), 30u);
  EXPECT_EQ(wei.truth.size(), 30u);
  // Every entity index in range and every entity used at least once.
  std::set<int> used(wei.truth.begin(), wei.truth.end());
  EXPECT_EQ(used.size(), 4u);
  EXPECT_EQ(*used.begin(), 0);
  EXPECT_EQ(*used.rbegin(), 3);
}

TEST(GeneratorTest, CaseRowsReallyCarryTheName) {
  auto dataset = GenerateDblpDataset(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  const Table& publish = **dataset->db.FindTable(kPublishTable);
  const Table& authors = **dataset->db.FindTable(kAuthorsTable);
  const int author_col = *publish.ColumnIndex("author_id");
  const int name_col = *authors.ColumnIndex("name");
  for (const AmbiguousCase& c : dataset->cases) {
    for (const int32_t row : c.publish_rows) {
      const int64_t author_pk = publish.GetInt(row, author_col);
      const int64_t author_row = *authors.RowForPrimaryKey(author_pk);
      EXPECT_EQ(authors.GetString(author_row, name_col), c.name);
    }
  }
}

TEST(GeneratorTest, CaseRowsAreExhaustive) {
  // No other Publish row carries an ambiguous name.
  auto dataset = GenerateDblpDataset(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  const Table& publish = **dataset->db.FindTable(kPublishTable);
  const Table& authors = **dataset->db.FindTable(kAuthorsTable);
  const int author_col = *publish.ColumnIndex("author_id");
  const int name_col = *authors.ColumnIndex("name");
  std::unordered_map<std::string, int64_t> counted;
  for (int64_t row = 0; row < publish.num_rows(); ++row) {
    const int64_t author_row =
        *authors.RowForPrimaryKey(publish.GetInt(row, author_col));
    ++counted[authors.GetString(author_row, name_col)];
  }
  EXPECT_EQ(counted["Wei Wang"], 30);
  EXPECT_EQ(counted["Bin Yu"], 10);
}

TEST(GeneratorTest, EntityNamesProvided) {
  auto dataset = GenerateDblpDataset(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  for (const AmbiguousCase& c : dataset->cases) {
    ASSERT_EQ(c.entity_names.size(), static_cast<size_t>(c.num_entities));
    for (const std::string& name : c.entity_names) {
      EXPECT_NE(name.find(c.name), std::string::npos);
      EXPECT_NE(name.find('@'), std::string::npos);
    }
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  auto a = GenerateDblpDataset(SmallConfig(77));
  auto b = GenerateDblpDataset(SmallConfig(77));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->db.TotalRows(), b->db.TotalRows());
  ASSERT_EQ(a->cases.size(), b->cases.size());
  for (size_t c = 0; c < a->cases.size(); ++c) {
    EXPECT_EQ(a->cases[c].publish_rows, b->cases[c].publish_rows);
    EXPECT_EQ(a->cases[c].truth, b->cases[c].truth);
  }
  EXPECT_EQ(a->entity_of_publish_row, b->entity_of_publish_row);
}

TEST(GeneratorTest, SeedsChangeTheWorld) {
  auto a = GenerateDblpDataset(SmallConfig(1));
  auto b = GenerateDblpDataset(SmallConfig(2));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->db.TotalRows(), b->db.TotalRows());
}

TEST(GeneratorTest, TruthCoversEveryPublishRow) {
  auto dataset = GenerateDblpDataset(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  const Table& publish = **dataset->db.FindTable(kPublishTable);
  EXPECT_EQ(dataset->entity_of_publish_row.size(),
            static_cast<size_t>(publish.num_rows()));
  for (const int entity : dataset->entity_of_publish_row) {
    EXPECT_GE(entity, 0);
    EXPECT_LT(entity, dataset->num_entities);
  }
}

TEST(GeneratorTest, RefCountsAreSkewedAcrossEntities) {
  GeneratorConfig config = SmallConfig();
  config.ambiguous = {{"Wei Wang", 5, 100}};
  auto dataset = GenerateDblpDataset(config);
  ASSERT_TRUE(dataset.ok());
  std::vector<int> counts(5, 0);
  for (const int t : dataset->cases[0].truth) {
    ++counts[static_cast<size_t>(t)];
  }
  // SkewedSplit assigns entity 0 the most references.
  EXPECT_GT(counts[0], counts[4]);
  for (const int count : counts) {
    EXPECT_GE(count, 1);
  }
}

TEST(GeneratorTest, DefaultSpecsAreTable1) {
  const auto specs = PaperTable1Specs();
  ASSERT_EQ(specs.size(), 10u);
  EXPECT_EQ(specs[8].name, "Wei Wang");
  EXPECT_EQ(specs[8].num_entities, 14);
  EXPECT_EQ(specs[8].num_refs, 141);
  auto dataset = GenerateDblpDataset(GeneratorConfig{});
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->cases.size(), 10u);
}

TEST(GeneratorTest, RejectsInvalidConfigs) {
  GeneratorConfig config = SmallConfig();
  config.num_communities = 0;
  EXPECT_FALSE(GenerateDblpDataset(config).ok());

  config = SmallConfig();
  config.end_year = config.start_year - 1;
  EXPECT_FALSE(GenerateDblpDataset(config).ok());

  config = SmallConfig();
  config.ambiguous = {{"X", 5, 3}};  // refs < entities
  EXPECT_FALSE(GenerateDblpDataset(config).ok());

  config = SmallConfig();
  config.ambiguous = {{"X", 0, 3}};
  EXPECT_FALSE(GenerateDblpDataset(config).ok());
}

TEST(GeneratorTest, PapersHaveBoundedAuthorLists) {
  auto dataset = GenerateDblpDataset(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  const Table& publish = **dataset->db.FindTable(kPublishTable);
  const int paper_col = *publish.ColumnIndex("paper_id");
  std::unordered_map<int64_t, int> authors_per_paper;
  for (int64_t row = 0; row < publish.num_rows(); ++row) {
    ++authors_per_paper[publish.GetInt(row, paper_col)];
  }
  for (const auto& [paper, count] : authors_per_paper) {
    EXPECT_GE(count, 1);
    EXPECT_LE(count, 20);
  }
}

}  // namespace
}  // namespace distinct
