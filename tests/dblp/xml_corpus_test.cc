// Synthetic dblp.xml corpus generator: deterministic in the seed, honest
// stats, and parseable by the real loader (including the deliberately
// nasty bits — entities in titles, CRLF inside attributes, noise elements).

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/io_util.h"
#include "dblp/schema.h"
#include "dblp/xml_corpus.h"
#include "dblp/xml_loader.h"
#include "gtest/gtest.h"

namespace distinct {
namespace {

std::string TempXml(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

XmlCorpusConfig SmallConfig(uint64_t seed = 7) {
  XmlCorpusConfig config;
  config.seed = seed;
  config.target_refs = 1000;
  return config;
}

TEST(XmlCorpusTest, SameSeedIsByteIdentical) {
  const std::string a = TempXml("corpus_same_a.xml");
  const std::string b = TempXml("corpus_same_b.xml");
  auto stats_a = WriteSyntheticDblpXml(a, SmallConfig());
  auto stats_b = WriteSyntheticDblpXml(b, SmallConfig());
  ASSERT_TRUE(stats_a.ok());
  ASSERT_TRUE(stats_b.ok());
  EXPECT_EQ(stats_a->papers, stats_b->papers);
  EXPECT_EQ(stats_a->refs, stats_b->refs);
  auto bytes_a = ReadFileToString(a);
  auto bytes_b = ReadFileToString(b);
  ASSERT_TRUE(bytes_a.ok());
  ASSERT_TRUE(bytes_b.ok());
  EXPECT_EQ(*bytes_a, *bytes_b);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(XmlCorpusTest, DifferentSeedsDiffer) {
  const std::string a = TempXml("corpus_seed_a.xml");
  const std::string b = TempXml("corpus_seed_b.xml");
  ASSERT_TRUE(WriteSyntheticDblpXml(a, SmallConfig(1)).ok());
  ASSERT_TRUE(WriteSyntheticDblpXml(b, SmallConfig(2)).ok());
  auto bytes_a = ReadFileToString(a);
  auto bytes_b = ReadFileToString(b);
  ASSERT_TRUE(bytes_a.ok());
  ASSERT_TRUE(bytes_b.ok());
  EXPECT_NE(*bytes_a, *bytes_b);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(XmlCorpusTest, StatsMatchFileAndTargetIsReached) {
  const std::string path = TempXml("corpus_stats.xml");
  auto stats = WriteSyntheticDblpXml(path, SmallConfig());
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->refs, 1000);
  EXPECT_GT(stats->papers, 0);
  EXPECT_EQ(static_cast<int64_t>(std::filesystem::file_size(path)),
            stats->bytes);
  std::remove(path.c_str());
}

TEST(XmlCorpusTest, LoaderParsesTheCorpusAndCountsAgree) {
  const std::string path = TempXml("corpus_load.xml");
  XmlCorpusConfig config = SmallConfig();
  config.noise_element_prob = 0.1;  // plenty of <www>/<phdthesis> to skip
  auto stats = WriteSyntheticDblpXml(path, config);
  ASSERT_TRUE(stats.ok());

  auto loaded = LoadDblpXmlFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records_loaded, stats->papers);
  EXPECT_GT(loaded->records_skipped, 0);

  auto publish = loaded->db.FindTable(kPublishTable);
  ASSERT_TRUE(publish.ok());
  EXPECT_EQ((*publish)->num_rows(), stats->refs);
  EXPECT_TRUE(loaded->db.ValidateIntegrity().ok());
  std::remove(path.c_str());
}

TEST(XmlCorpusTest, YearsStayInTheConfiguredRange) {
  const std::string path = TempXml("corpus_years.xml");
  XmlCorpusConfig config = SmallConfig();
  config.start_year = 1999;
  config.end_year = 2001;
  ASSERT_TRUE(WriteSyntheticDblpXml(path, config).ok());
  auto loaded = LoadDblpXmlFile(path);
  ASSERT_TRUE(loaded.ok());
  auto proceedings = loaded->db.FindTable(kProceedingsTable);
  ASSERT_TRUE(proceedings.ok());
  auto year_col = (*proceedings)->ColumnIndex("year");
  ASSERT_TRUE(year_col.ok());
  for (int64_t row = 0; row < (*proceedings)->num_rows(); ++row) {
    const int64_t year = (*proceedings)->GetInt(row, *year_col);
    EXPECT_GE(year, 1999);
    EXPECT_LE(year, 2001);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace distinct
