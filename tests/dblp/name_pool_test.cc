#include "dblp/name_pool.h"

#include <set>

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(NamePoolTest, NamesAreDistinctWithinPool) {
  NamePool pool(400, 800, 1.0);
  std::set<std::string> firsts;
  for (size_t r = 0; r < pool.num_first(); ++r) {
    EXPECT_TRUE(firsts.insert(pool.FirstName(r)).second)
        << "duplicate first name at rank " << r;
  }
  std::set<std::string> lasts;
  for (size_t r = 0; r < pool.num_last(); ++r) {
    EXPECT_TRUE(lasts.insert(pool.LastName(r)).second)
        << "duplicate last name at rank " << r;
  }
}

TEST(NamePoolTest, NamesAreCapitalizedWords) {
  NamePool pool(50, 50, 1.0);
  for (size_t r = 0; r < 50; ++r) {
    const std::string name = pool.FirstName(r);
    ASSERT_FALSE(name.empty());
    EXPECT_GE(name[0], 'A');
    EXPECT_LE(name[0], 'Z');
    EXPECT_EQ(name.find(' '), std::string::npos);
  }
}

TEST(NamePoolTest, FullNameHasTwoParts) {
  NamePool pool(100, 100, 1.0);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const std::string name = pool.SampleFullName(rng);
    const size_t space = name.find(' ');
    ASSERT_NE(space, std::string::npos);
    EXPECT_GT(space, 0u);
    EXPECT_LT(space, name.size() - 1);
  }
}

TEST(NamePoolTest, SamplingFavorsLowRanks) {
  NamePool pool(200, 200, 1.0);
  Rng rng(5);
  int head = 0;
  int tail = 0;
  for (int i = 0; i < 20000; ++i) {
    const size_t rank = pool.SampleFirstRank(rng);
    if (rank < 20) ++head;
    if (rank >= 180) ++tail;
  }
  EXPECT_GT(head, tail * 3);
}

TEST(NamePoolTest, DeterministicNames) {
  NamePool a(100, 100, 1.0);
  NamePool b(100, 100, 1.0);
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(a.FirstName(r), b.FirstName(r));
    EXPECT_EQ(a.LastName(r), b.LastName(r));
  }
}

TEST(NamePoolTest, FirstAndLastPoolsDiffer) {
  // The salts differ, so the pools should not be identical element-wise.
  NamePool pool(100, 100, 1.0);
  int same = 0;
  for (size_t r = 0; r < 100; ++r) {
    if (pool.FirstName(r) == pool.LastName(r)) {
      ++same;
    }
  }
  EXPECT_LT(same, 10);
}

TEST(NamePoolTest, InstitutionNames) {
  const std::string inst = NamePool::InstitutionName(7);
  EXPECT_FALSE(inst.empty());
  EXPECT_NE(NamePool::InstitutionName(1), NamePool::InstitutionName(2));
  // Deterministic.
  EXPECT_EQ(NamePool::InstitutionName(7), inst);
}

TEST(NamePoolTest, NoCollisionWithPaperNames) {
  // The planted ambiguous names are real names; pool names are synthetic
  // syllable compounds, so they never collide.
  NamePool pool(400, 800, 1.0);
  const std::set<std::string> planted = {"Wei", "Wang", "Bing", "Liu",
                                         "Smith", "Gupta", "Yu"};
  for (size_t r = 0; r < pool.num_first(); ++r) {
    EXPECT_FALSE(planted.contains(pool.FirstName(r)));
  }
  for (size_t r = 0; r < pool.num_last(); ++r) {
    EXPECT_FALSE(planted.contains(pool.LastName(r)));
  }
}

}  // namespace
}  // namespace distinct
