#include "dblp/schema.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(DblpSchemaTest, HasFiveTables) {
  auto db = MakeEmptyDblpDatabase();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_tables(), 5);
  for (const char* name : {kAuthorsTable, kPublishTable, kPublicationsTable,
                           kProceedingsTable, kConferencesTable}) {
    EXPECT_TRUE(db->TableId(name).ok()) << name;
  }
}

TEST(DblpSchemaTest, ForeignKeysFormFig2Chain) {
  auto db = MakeEmptyDblpDatabase();
  ASSERT_TRUE(db.ok());
  const Table& publish = **db->FindTable(kPublishTable);
  EXPECT_EQ(publish.column(*publish.ColumnIndex("author_id")).fk_table,
            kAuthorsTable);
  EXPECT_EQ(publish.column(*publish.ColumnIndex("paper_id")).fk_table,
            kPublicationsTable);
  const Table& publications = **db->FindTable(kPublicationsTable);
  EXPECT_EQ(publications.column(*publications.ColumnIndex("proc_id")).fk_table,
            kProceedingsTable);
  const Table& proceedings = **db->FindTable(kProceedingsTable);
  EXPECT_EQ(proceedings.column(*proceedings.ColumnIndex("conf_id")).fk_table,
            kConferencesTable);
}

TEST(DblpSchemaTest, EveryTableHasPrimaryKey) {
  auto db = MakeEmptyDblpDatabase();
  ASSERT_TRUE(db.ok());
  for (int t = 0; t < db->num_tables(); ++t) {
    EXPECT_GE(db->table(t).primary_key_column(), 0) << db->table(t).name();
  }
}

TEST(DblpSchemaTest, ReferenceSpecResolves) {
  auto db = MakeEmptyDblpDatabase();
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(ResolveReferenceSpec(*db, DblpReferenceSpec()).ok());
}

TEST(DblpSchemaTest, DefaultPromotionsAreValidColumns) {
  auto db = MakeEmptyDblpDatabase();
  ASSERT_TRUE(db.ok());
  for (const auto& [table_name, column_name] : DblpDefaultPromotions()) {
    auto table = db->FindTable(table_name);
    ASSERT_TRUE(table.ok()) << table_name;
    auto column = (*table)->ColumnIndex(column_name);
    ASSERT_TRUE(column.ok()) << table_name << "." << column_name;
    const ColumnSpec& spec = (*table)->column(*column);
    EXPECT_FALSE(spec.is_primary_key);
    EXPECT_TRUE(spec.fk_table.empty());
  }
}

}  // namespace
}  // namespace distinct
