#include "dblp/stats.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace distinct {
namespace {

TEST(StatsTest, MiniDblpCounts) {
  Database db = testing_util::MakeMiniDblp();
  auto stats = ComputeDblpStats(db);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_author_names, 5);
  EXPECT_EQ(stats->num_papers, 3);
  EXPECT_EQ(stats->num_references, 7);
  EXPECT_EQ(stats->num_conferences, 3);
  EXPECT_EQ(stats->num_proceedings, 3);
  EXPECT_NEAR(stats->refs_per_paper, 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats->refs_per_name, 7.0 / 5.0, 1e-12);
}

TEST(StatsTest, RefBuckets) {
  Database db = testing_util::MakeMiniDblp();
  auto stats = ComputeDblpStats(db);
  ASSERT_TRUE(stats.ok());
  // Wei Wang: 3 refs; Jiong Yang: 2; Jian Pei: 1; Haixun Wang: 1;
  // Aidong Zhang: 0 (not in Publish, so absent from buckets).
  EXPECT_EQ(stats->name_count_by_refs[0], 2);  // one ref
  EXPECT_EQ(stats->name_count_by_refs[1], 1);  // two refs
  EXPECT_EQ(stats->name_count_by_refs[2], 1);  // 3-5 refs
  EXPECT_EQ(stats->name_count_by_refs[3], 0);
  EXPECT_EQ(stats->name_count_by_refs[4], 0);
}

TEST(StatsTest, DebugStringMentionsCounts) {
  Database db = testing_util::MakeMiniDblp();
  auto stats = ComputeDblpStats(db);
  const std::string debug = stats->DebugString();
  EXPECT_NE(debug.find("papers=3"), std::string::npos);
  EXPECT_NE(debug.find("references=7"), std::string::npos);
}

TEST(StatsTest, FailsOnNonDblpDatabase) {
  Database db;
  EXPECT_FALSE(ComputeDblpStats(db).ok());
}

TEST(CountReferencesTest, CountsByName) {
  Database db = testing_util::MakeMiniDblp();
  const ReferenceSpec spec = DblpReferenceSpec();
  EXPECT_EQ(*CountReferencesForName(db, spec, "Wei Wang"), 3);
  EXPECT_EQ(*CountReferencesForName(db, spec, "Jiong Yang"), 2);
  EXPECT_EQ(*CountReferencesForName(db, spec, "Aidong Zhang"), 0);
  EXPECT_EQ(*CountReferencesForName(db, spec, "Nobody"), 0);
}

}  // namespace
}  // namespace distinct
