#include "dblp/xml_loader.h"

#include <gtest/gtest.h>

#include "dblp/schema.h"
#include "dblp/stats.h"

namespace distinct {
namespace {

constexpr char kSampleXml[] = R"(<?xml version="1.0"?>
<!DOCTYPE dblp SYSTEM "dblp.dtd">
<dblp>
  <inproceedings key="conf/vldb/WangYM97">
    <author>Wei Wang</author><author>Jiong Yang</author>
    <author>Richard Muntz</author>
    <title>STING</title>
    <booktitle>VLDB</booktitle>
    <year>1997</year>
  </inproceedings>
  <inproceedings key="conf/sigmod/WangW02">
    <author>Haixun Wang</author><author>Wei Wang</author>
    <title>Clustering by pattern similarity</title>
    <booktitle>SIGMOD</booktitle>
    <year>2002</year>
  </inproceedings>
  <article key="journals/tods/Yang03">
    <author>Jiong Yang</author>
    <title>Some article</title>
    <journal>TODS</journal>
    <year>2003</year>
  </article>
  <www key="homepages/w/WeiWang"><author>Wei Wang</author></www>
  <proceedings key="conf/vldb/97"><title>VLDB 97</title></proceedings>
</dblp>)";

TEST(XmlLoaderTest, LoadsRecordsIntoSchema) {
  auto result = LoadDblpXml(kSampleXml);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_loaded, 3);
  auto stats = ComputeDblpStats(result->db);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_papers, 3);
  // Authors: Wei Wang, Jiong Yang, Richard Muntz, Haixun Wang.
  EXPECT_EQ(stats->num_author_names, 4);
  EXPECT_EQ(stats->num_references, 6);
  // Venues: VLDB, SIGMOD, TODS.
  EXPECT_EQ(stats->num_conferences, 3);
}

TEST(XmlLoaderTest, ReferencesResolveByName) {
  auto result = LoadDblpXml(kSampleXml);
  ASSERT_TRUE(result.ok());
  const ReferenceSpec spec = DblpReferenceSpec();
  EXPECT_EQ(*CountReferencesForName(result->db, spec, "Wei Wang"), 2);
  EXPECT_EQ(*CountReferencesForName(result->db, spec, "Jiong Yang"), 2);
  EXPECT_EQ(*CountReferencesForName(result->db, spec, "Richard Muntz"), 1);
}

TEST(XmlLoaderTest, IntegrityHolds) {
  auto result = LoadDblpXml(kSampleXml);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->db.ValidateIntegrity().ok());
}

TEST(XmlLoaderTest, ProceedingsShareVenueYear) {
  auto result = LoadDblpXml(kSampleXml);
  ASSERT_TRUE(result.ok());
  auto stats = ComputeDblpStats(result->db);
  // (VLDB,1997), (SIGMOD,2002), (TODS,2003).
  EXPECT_EQ(stats->num_proceedings, 3);
}

TEST(XmlLoaderTest, MinRefsFilterDropsRareAuthors) {
  XmlLoadOptions options;
  options.min_refs_per_author = 2;
  auto result = LoadDblpXml(kSampleXml, options);
  ASSERT_TRUE(result.ok());
  const ReferenceSpec spec = DblpReferenceSpec();
  EXPECT_EQ(*CountReferencesForName(result->db, spec, "Wei Wang"), 2);
  EXPECT_EQ(*CountReferencesForName(result->db, spec, "Richard Muntz"), 0);
  auto stats = ComputeDblpStats(result->db);
  EXPECT_EQ(stats->num_author_names, 2);  // Wei Wang, Jiong Yang
}

TEST(XmlLoaderTest, EntityDecodedAuthorNames) {
  const char* xml =
      "<dblp><article key=\"x\"><author>J&ouml;rg M&uuml;ller</author>"
      "<title>T</title><journal>J</journal><year>2000</year>"
      "</article></dblp>";
  auto result = LoadDblpXml(xml);
  ASSERT_TRUE(result.ok());
  const ReferenceSpec spec = DblpReferenceSpec();
  EXPECT_EQ(*CountReferencesForName(result->db, spec, "Jörg Müller"), 1);
}

TEST(XmlLoaderTest, MissingVenueAndYearTolerated) {
  const char* xml =
      "<dblp><article key=\"x\"><author>A B</author><title>T</title>"
      "</article></dblp>";
  auto result = LoadDblpXml(xml);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_loaded, 1);
  EXPECT_TRUE(result->db.ValidateIntegrity().ok());
}

TEST(XmlLoaderTest, RecordsWithoutAuthorsSkipped) {
  const char* xml =
      "<dblp><article key=\"x\"><title>No author</title></article></dblp>";
  auto result = LoadDblpXml(xml);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_loaded, 0);
  EXPECT_GE(result->records_skipped, 1);
}

TEST(XmlLoaderTest, MalformedXmlFails) {
  EXPECT_FALSE(LoadDblpXml("<dblp><article>").ok());
}

TEST(XmlLoaderTest, MissingFileFails) {
  EXPECT_EQ(LoadDblpXmlFile("/no/such/dblp.xml").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace distinct
