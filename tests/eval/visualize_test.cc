#include "eval/visualize.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

std::vector<ReferenceDisplay> MakeRefs(
    const std::vector<std::pair<int, int>>& truth_pred) {
  std::vector<ReferenceDisplay> refs;
  for (size_t i = 0; i < truth_pred.size(); ++i) {
    ReferenceDisplay ref;
    ref.label = "ref" + std::to_string(i);
    ref.truth = truth_pred[i].first;
    ref.predicted = truth_pred[i].second;
    refs.push_back(std::move(ref));
  }
  return refs;
}

TEST(VisualizeTest, PerfectClusteringHasNoMistakes) {
  const auto refs = MakeRefs({{0, 0}, {0, 0}, {1, 1}});
  const std::string diagram = RenderClusterDiagram(refs, {"Ann", "Bob"});
  EXPECT_NE(diagram.find("Ann"), std::string::npos);
  EXPECT_NE(diagram.find("Bob"), std::string::npos);
  EXPECT_EQ(diagram.find("[SPLIT]"), std::string::npos);
  EXPECT_EQ(diagram.find("[MERGED"), std::string::npos);
  EXPECT_NE(diagram.find("0 split entities, 0 merged clusters"),
            std::string::npos);
}

TEST(VisualizeTest, SplitEntityIsFlagged) {
  const auto refs = MakeRefs({{0, 0}, {0, 1}, {0, 1}});
  const std::string diagram = RenderClusterDiagram(refs, {});
  EXPECT_NE(diagram.find("[SPLIT]"), std::string::npos);
  EXPECT_NE(diagram.find("1 split entities"), std::string::npos);
}

TEST(VisualizeTest, MergedClusterIsFlagged) {
  const auto refs = MakeRefs({{0, 0}, {1, 0}});
  const std::string diagram = RenderClusterDiagram(refs, {});
  EXPECT_NE(diagram.find("[MERGED"), std::string::npos);
  EXPECT_NE(diagram.find("1 merged clusters"), std::string::npos);
}

TEST(VisualizeTest, FallbackEntityNames) {
  const auto refs = MakeRefs({{3, 0}});
  const std::string diagram = RenderClusterDiagram(refs, {});
  EXPECT_NE(diagram.find("entity 3"), std::string::npos);
}

TEST(VisualizeTest, ShowReferencesListsLabels) {
  const auto refs = MakeRefs({{0, 0}, {0, 0}});
  const std::string without = RenderClusterDiagram(refs, {});
  EXPECT_EQ(without.find("ref0"), std::string::npos);
  const std::string with =
      RenderClusterDiagram(refs, {}, /*show_references=*/true);
  EXPECT_NE(with.find("ref0"), std::string::npos);
  EXPECT_NE(with.find("ref1"), std::string::npos);
}

TEST(VisualizeTest, SummaryCountsEntitiesAndClusters) {
  const auto refs = MakeRefs({{0, 0}, {1, 1}, {2, 1}});
  const std::string diagram = RenderClusterDiagram(refs, {});
  EXPECT_NE(diagram.find("3 entities, 2 predicted clusters"),
            std::string::npos);
}

}  // namespace
}  // namespace distinct
