#include "eval/confusion.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace distinct {
namespace {

TEST(ConfusionTest, PerfectClusteringHasNoErrors) {
  const std::vector<int> truth = {0, 0, 1, 1, 2};
  const ConfusionReport report = AnalyzeConfusion(truth, truth);
  EXPECT_TRUE(report.merges.empty());
  EXPECT_TRUE(report.splits.empty());
  EXPECT_EQ(report.false_positive_pairs, 0);
  EXPECT_EQ(report.false_negative_pairs, 0);
  EXPECT_NE(report.Render().find("no mistakes"), std::string::npos);
}

TEST(ConfusionTest, MergeErrorCost) {
  // Entities 0 (2 refs) and 1 (3 refs) share predicted cluster 0.
  const std::vector<int> truth = {0, 0, 1, 1, 1};
  const std::vector<int> predicted = {0, 0, 0, 0, 0};
  const ConfusionReport report = AnalyzeConfusion(truth, predicted);
  ASSERT_EQ(report.merges.size(), 1u);
  EXPECT_EQ(report.merges[0].entity1, 0);
  EXPECT_EQ(report.merges[0].entity2, 1);
  EXPECT_EQ(report.merges[0].pair_cost, 6);  // 2 * 3
  EXPECT_EQ(report.false_positive_pairs, 6);
  EXPECT_TRUE(report.splits.empty());
}

TEST(ConfusionTest, SplitErrorCost) {
  // Entity 0's four refs in fragments of 2, 1, 1.
  const std::vector<int> truth = {0, 0, 0, 0};
  const std::vector<int> predicted = {0, 0, 1, 2};
  const ConfusionReport report = AnalyzeConfusion(truth, predicted);
  ASSERT_EQ(report.splits.size(), 1u);
  EXPECT_EQ(report.splits[0].entity, 0);
  EXPECT_EQ(report.splits[0].num_fragments, 3);
  EXPECT_EQ(report.splits[0].pair_cost, 2 * 1 + 2 * 1 + 1 * 1);
  EXPECT_TRUE(report.merges.empty());
}

TEST(ConfusionTest, CostsMatchPairwiseMetrics) {
  const std::vector<int> truth = {0, 0, 1, 1, 2, 2, 2};
  const std::vector<int> predicted = {0, 1, 1, 1, 2, 2, 3};
  const ConfusionReport report = AnalyzeConfusion(truth, predicted);
  const PairwiseScores scores = PairwisePrecisionRecall(truth, predicted);
  EXPECT_EQ(report.false_positive_pairs, scores.false_positives);
  EXPECT_EQ(report.false_negative_pairs, scores.false_negatives);
}

TEST(ConfusionTest, MergeAcrossSeveralClustersAccumulates) {
  // Entities 0 and 1 collide in cluster 0 (1x1) AND cluster 1 (1x1).
  const std::vector<int> truth = {0, 1, 0, 1};
  const std::vector<int> predicted = {0, 0, 1, 1};
  const ConfusionReport report = AnalyzeConfusion(truth, predicted);
  ASSERT_EQ(report.merges.size(), 1u);
  EXPECT_EQ(report.merges[0].pair_cost, 2);
}

TEST(ConfusionTest, OrderedByDescendingCost) {
  // Entity 2 (3 refs) merged with entity 3 (3 refs): cost 9.
  // Entity 0 (1 ref) merged with entity 1 (1 ref): cost 1.
  const std::vector<int> truth = {0, 1, 2, 2, 2, 3, 3, 3};
  const std::vector<int> predicted = {0, 0, 1, 1, 1, 1, 1, 1};
  const ConfusionReport report = AnalyzeConfusion(truth, predicted);
  ASSERT_EQ(report.merges.size(), 2u);
  EXPECT_EQ(report.merges[0].pair_cost, 9);
  EXPECT_EQ(report.merges[1].pair_cost, 1);
}

TEST(ConfusionTest, RenderUsesEntityNames) {
  const std::vector<int> truth = {0, 1};
  const std::vector<int> predicted = {0, 0};
  const ConfusionReport report = AnalyzeConfusion(truth, predicted);
  const std::string rendered =
      report.Render({"Wei Wang @ UNC", "Wei Wang @ UNSW"});
  EXPECT_NE(rendered.find("Wei Wang @ UNC"), std::string::npos);
  EXPECT_NE(rendered.find("Wei Wang @ UNSW"), std::string::npos);
  // Falls back to indices when names are missing.
  const std::string bare = report.Render();
  EXPECT_NE(bare.find("entity 0"), std::string::npos);
}

TEST(ConfusionTest, MaxRowsTruncates) {
  std::vector<int> truth;
  std::vector<int> predicted;
  // Five split entities.
  for (int e = 0; e < 5; ++e) {
    truth.push_back(e);
    truth.push_back(e);
    predicted.push_back(2 * e);
    predicted.push_back(2 * e + 1);
  }
  const ConfusionReport report = AnalyzeConfusion(truth, predicted);
  EXPECT_EQ(report.splits.size(), 5u);
  const std::string rendered = report.Render({}, /*max_rows=*/2);
  // Only two "in N fragments" rows rendered.
  size_t occurrences = 0;
  size_t at = 0;
  while ((at = rendered.find("fragments", at)) != std::string::npos) {
    ++occurrences;
    at += 1;
  }
  EXPECT_EQ(occurrences, 2u);
}

}  // namespace
}  // namespace distinct
