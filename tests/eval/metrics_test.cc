#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace distinct {
namespace {

TEST(PairwiseTest, PerfectClustering) {
  const std::vector<int> truth = {0, 0, 1, 1, 2};
  const PairwiseScores scores = PairwisePrecisionRecall(truth, truth);
  EXPECT_EQ(scores.true_positives, 2);
  EXPECT_EQ(scores.false_positives, 0);
  EXPECT_EQ(scores.false_negatives, 0);
  EXPECT_DOUBLE_EQ(scores.precision, 1.0);
  EXPECT_DOUBLE_EQ(scores.recall, 1.0);
  EXPECT_DOUBLE_EQ(scores.f1, 1.0);
  EXPECT_DOUBLE_EQ(scores.accuracy, 1.0);
  EXPECT_EQ(scores.total_pairs, 10);
}

TEST(PairwiseTest, ClusterIdsNeedNotAlign) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<int> predicted = {7, 7, 3, 3};
  const PairwiseScores scores = PairwisePrecisionRecall(truth, predicted);
  EXPECT_DOUBLE_EQ(scores.f1, 1.0);
}

TEST(PairwiseTest, AllSingletonsPrediction) {
  const std::vector<int> truth = {0, 0, 0};
  const std::vector<int> predicted = {0, 1, 2};
  const PairwiseScores scores = PairwisePrecisionRecall(truth, predicted);
  EXPECT_EQ(scores.true_positives, 0);
  EXPECT_EQ(scores.false_positives, 0);
  EXPECT_EQ(scores.false_negatives, 3);
  EXPECT_DOUBLE_EQ(scores.precision, 1.0);  // vacuous
  EXPECT_DOUBLE_EQ(scores.recall, 0.0);
  EXPECT_DOUBLE_EQ(scores.f1, 0.0);
}

TEST(PairwiseTest, AllMergedPrediction) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<int> predicted = {0, 0, 0, 0};
  const PairwiseScores scores = PairwisePrecisionRecall(truth, predicted);
  // Truth pairs: 2. Predicted pairs: 6. TP = 2.
  EXPECT_EQ(scores.true_positives, 2);
  EXPECT_EQ(scores.false_positives, 4);
  EXPECT_EQ(scores.false_negatives, 0);
  EXPECT_DOUBLE_EQ(scores.recall, 1.0);
  EXPECT_NEAR(scores.precision, 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(scores.accuracy, 1.0 - 4.0 / 6.0, 1e-12);
}

TEST(PairwiseTest, HandComputedMixedCase) {
  // truth:     {0,1} {2,3}
  // predicted: {0,1,2} {3}
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<int> predicted = {0, 0, 0, 1};
  const PairwiseScores scores = PairwisePrecisionRecall(truth, predicted);
  // predicted pairs: (0,1),(0,2),(1,2). TP: (0,1). FP: 2. FN: (2,3).
  EXPECT_EQ(scores.true_positives, 1);
  EXPECT_EQ(scores.false_positives, 2);
  EXPECT_EQ(scores.false_negatives, 1);
  EXPECT_NEAR(scores.precision, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(scores.recall, 0.5, 1e-12);
  EXPECT_NEAR(scores.f1, HarmonicMean(1.0 / 3.0, 0.5), 1e-12);
}

TEST(PairwiseTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(PairwisePrecisionRecall({}, {}).f1, 1.0);
  EXPECT_DOUBLE_EQ(PairwisePrecisionRecall({0}, {0}).f1, 1.0);
  EXPECT_EQ(PairwisePrecisionRecall({0}, {0}).total_pairs, 0);
}

TEST(PairwiseTest, SymmetryOfErrors) {
  // Swapping truth and prediction swaps FP and FN.
  const std::vector<int> a = {0, 0, 1, 1, 2};
  const std::vector<int> b = {0, 1, 1, 2, 2};
  const PairwiseScores ab = PairwisePrecisionRecall(a, b);
  const PairwiseScores ba = PairwisePrecisionRecall(b, a);
  EXPECT_EQ(ab.true_positives, ba.true_positives);
  EXPECT_EQ(ab.false_positives, ba.false_negatives);
  EXPECT_EQ(ab.false_negatives, ba.false_positives);
}

TEST(HarmonicMeanTest, Basics) {
  EXPECT_DOUBLE_EQ(HarmonicMean(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicMean(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicMean(1.0, 0.0), 0.0);
  EXPECT_NEAR(HarmonicMean(0.5, 1.0), 2.0 / 3.0, 1e-12);
}

TEST(BCubedTest, PerfectClustering) {
  const std::vector<int> truth = {0, 0, 1};
  const BCubedScores scores = BCubed(truth, truth);
  EXPECT_DOUBLE_EQ(scores.precision, 1.0);
  EXPECT_DOUBLE_EQ(scores.recall, 1.0);
  EXPECT_DOUBLE_EQ(scores.f1, 1.0);
}

TEST(BCubedTest, HandComputed) {
  // truth {0,1} {2}; predicted {0,1,2}.
  const std::vector<int> truth = {0, 0, 1};
  const std::vector<int> predicted = {0, 0, 0};
  const BCubedScores scores = BCubed(truth, predicted);
  // precision per item: 2/3, 2/3, 1/3 -> 5/9. recall: 1, 1, 1.
  EXPECT_NEAR(scores.precision, 5.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(scores.recall, 1.0);
}

TEST(BCubedTest, SingletonsGivePerfectPrecision) {
  const std::vector<int> truth = {0, 0, 1};
  const std::vector<int> predicted = {0, 1, 2};
  const BCubedScores scores = BCubed(truth, predicted);
  EXPECT_DOUBLE_EQ(scores.precision, 1.0);
  // recall per item: 1/2, 1/2, 1 -> 2/3.
  EXPECT_NEAR(scores.recall, 2.0 / 3.0, 1e-12);
}

TEST(BCubedTest, EmptyInput) {
  const BCubedScores scores = BCubed({}, {});
  EXPECT_DOUBLE_EQ(scores.precision, 1.0);
  EXPECT_DOUBLE_EQ(scores.recall, 1.0);
}

TEST(AdjustedRandTest, PerfectAgreementIsOne) {
  const std::vector<int> truth = {0, 0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(truth, truth), 1.0);
  // Relabeled clusters still agree perfectly.
  const std::vector<int> relabeled = {7, 7, 3, 3, 9};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(truth, relabeled), 1.0);
}

TEST(AdjustedRandTest, HandComputed) {
  // Classic example: truth {0,0,0,1,1,1}, predicted {0,0,1,1,2,2}.
  // nij cells: (0,0)=2 (0,1)=1 (1,1)=1 (1,2)=2.
  // index = 1 + 0 + 0 + 1 = 2; sum_truth = 3+3 = 6; sum_pred = 1+1+1 = 3.
  // total = 15; expected = 6*3/15 = 1.2; max = 4.5.
  // ARI = (2 - 1.2) / (4.5 - 1.2) = 0.8/3.3.
  const std::vector<int> truth = {0, 0, 0, 1, 1, 1};
  const std::vector<int> predicted = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(AdjustedRandIndex(truth, predicted), 0.8 / 3.3, 1e-12);
}

TEST(AdjustedRandTest, DegenerateClusterings) {
  // Both trivial (all one cluster): defined as 1.
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 0, 0}, {1, 1, 1}), 1.0);
  // Tiny inputs.
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0}, {0}), 1.0);
}

TEST(AdjustedRandTest, RandomClusteringsScoreNearZero) {
  Rng rng(77);
  double total = 0.0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> a(60);
    std::vector<int> b(60);
    for (size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<int>(rng.UniformInt(0, 4));
      b[i] = static_cast<int>(rng.UniformInt(0, 4));
    }
    total += AdjustedRandIndex(a, b);
  }
  EXPECT_NEAR(total / trials, 0.0, 0.05);
}

TEST(AdjustedRandTest, BetterClusteringScoresHigher) {
  const std::vector<int> truth = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  const std::vector<int> good = {0, 0, 0, 1, 1, 1, 2, 2, 1};
  const std::vector<int> bad = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_GT(AdjustedRandIndex(truth, good), AdjustedRandIndex(truth, bad));
}

/// Property sweep: pairwise and B-cubed agree on the extremes and stay in
/// [0,1] on random clusterings.
class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, ScoresStayInUnitInterval) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 40));
    std::vector<int> truth(n);
    std::vector<int> predicted(n);
    for (size_t i = 0; i < n; ++i) {
      truth[i] = static_cast<int>(rng.UniformInt(0, 5));
      predicted[i] = static_cast<int>(rng.UniformInt(0, 5));
    }
    const PairwiseScores pairwise = PairwisePrecisionRecall(truth, predicted);
    for (const double v : {pairwise.precision, pairwise.recall, pairwise.f1,
                           pairwise.accuracy}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    const BCubedScores bcubed = BCubed(truth, predicted);
    for (const double v : {bcubed.precision, bcubed.recall, bcubed.f1}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    // Identity: both metrics are perfect when predicted == truth.
    EXPECT_DOUBLE_EQ(PairwisePrecisionRecall(truth, truth).f1, 1.0);
    EXPECT_DOUBLE_EQ(BCubed(truth, truth).f1, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(5, 55, 555, 5555));

}  // namespace
}  // namespace distinct
