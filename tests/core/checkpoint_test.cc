#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace distinct {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the test temp root.
std::string MakeCheckpointDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

/// A checkpoint with two groups, non-trivial merge sequences, and
/// similarities that exercise the %.17g round-trip (no short decimal
/// representation).
ShardCheckpoint MakeCheckpoint() {
  ShardCheckpoint checkpoint;
  checkpoint.shard_id = 2;
  checkpoint.num_shards = 3;
  checkpoint.catalog_version = 4;
  checkpoint.tuple_watermark = 123456789012345;

  BulkResolution wei;
  wei.name = "Wei Wang";
  wei.num_refs = 4;
  wei.clustering.assignment = {0, 1, 0, 2};
  wei.clustering.num_clusters = 3;
  wei.clustering.merges = {{0, 2, 1.0 / 3.0}};
  wei.clustering.num_merges = 1;

  BulkResolution jing;
  jing.name = "Jing \"J\" Li\n";  // exercises string escaping
  jing.num_refs = 2;
  jing.clustering.assignment = {0, 0};
  jing.clustering.num_clusters = 1;
  jing.clustering.merges = {{0, 1, 7.2341985721349e-5}};
  jing.clustering.num_merges = 1;

  checkpoint.group_indices = {1, 5};
  checkpoint.results = {wei, jing};
  return checkpoint;
}

TEST(CheckpointTest, RoundTripIsExact) {
  const std::string dir = MakeCheckpointDir("ckpt_roundtrip");
  const ShardCheckpoint written = MakeCheckpoint();
  ASSERT_TRUE(WriteShardCheckpoint(dir, written).ok());
  EXPECT_TRUE(ShardCheckpointComplete(dir, 2));

  auto read = ReadShardCheckpoint(dir, 2);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->shard_id, written.shard_id);
  EXPECT_EQ(read->num_shards, written.num_shards);
  EXPECT_EQ(read->catalog_version, written.catalog_version);
  EXPECT_EQ(read->tuple_watermark, written.tuple_watermark);
  EXPECT_EQ(read->group_indices, written.group_indices);
  ASSERT_EQ(read->results.size(), written.results.size());
  for (size_t g = 0; g < written.results.size(); ++g) {
    const BulkResolution& want = written.results[g];
    const BulkResolution& got = read->results[g];
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.num_refs, want.num_refs);
    EXPECT_EQ(got.clustering.assignment, want.clustering.assignment);
    EXPECT_EQ(got.clustering.num_clusters, want.clustering.num_clusters);
    EXPECT_EQ(got.clustering.num_merges, want.clustering.num_merges);
    ASSERT_EQ(got.clustering.merges.size(), want.clustering.merges.size());
    for (size_t m = 0; m < want.clustering.merges.size(); ++m) {
      EXPECT_EQ(got.clustering.merges[m].into,
                want.clustering.merges[m].into);
      EXPECT_EQ(got.clustering.merges[m].from,
                want.clustering.merges[m].from);
      // Bit-exact: the %.17g round-trip must not lose a single ulp.
      EXPECT_EQ(got.clustering.merges[m].similarity,
                want.clustering.merges[m].similarity);
    }
  }
}

TEST(CheckpointTest, EmptyShardRoundTrips) {
  const std::string dir = MakeCheckpointDir("ckpt_empty");
  ShardCheckpoint checkpoint;
  checkpoint.shard_id = 0;
  checkpoint.num_shards = 7;
  ASSERT_TRUE(WriteShardCheckpoint(dir, checkpoint).ok());
  auto read = ReadShardCheckpoint(dir, 0);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->group_indices.empty());
  EXPECT_TRUE(read->results.empty());
}

TEST(CheckpointTest, MissingCheckpointIsNotFound) {
  const std::string dir = MakeCheckpointDir("ckpt_missing");
  EXPECT_FALSE(ShardCheckpointComplete(dir, 0));
  auto read = ReadShardCheckpoint(dir, 0);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

// Kill-mid-shard, variant 1: the process died before the marker was
// written. The shard must read as incomplete (re-run), regardless of what
// the data file holds.
TEST(CheckpointTest, DataWithoutMarkerIsIncomplete) {
  const std::string dir = MakeCheckpointDir("ckpt_no_marker");
  ASSERT_TRUE(WriteShardCheckpoint(dir, MakeCheckpoint()).ok());
  ASSERT_TRUE(fs::remove(ShardMarkerPath(dir, 2)));

  EXPECT_FALSE(ShardCheckpointComplete(dir, 2));
  auto read = ReadShardCheckpoint(dir, 2);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

// Kill-mid-shard, variant 2: a torn data file next to a surviving marker
// cannot happen under the write protocol, so when observed it means
// corruption — reject loudly instead of resuming from garbage.
TEST(CheckpointTest, TruncatedDataWithMarkerIsDataLoss) {
  const std::string dir = MakeCheckpointDir("ckpt_truncated");
  ASSERT_TRUE(WriteShardCheckpoint(dir, MakeCheckpoint()).ok());
  const std::string path = ShardCheckpointPath(dir, 2);
  const std::string full = ReadFile(path);
  ASSERT_GT(full.size(), 10u);
  WriteFile(path, full.substr(0, full.size() / 2));

  EXPECT_TRUE(ShardCheckpointComplete(dir, 2));
  auto read = ReadShardCheckpoint(dir, 2);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointTest, CorruptJsonIsDataLoss) {
  const std::string dir = MakeCheckpointDir("ckpt_corrupt");
  ASSERT_TRUE(WriteShardCheckpoint(dir, MakeCheckpoint()).ok());
  WriteFile(ShardCheckpointPath(dir, 2), "{ this is not json");

  auto read = ReadShardCheckpoint(dir, 2);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointTest, VersionMismatchIsFailedPrecondition) {
  const std::string dir = MakeCheckpointDir("ckpt_version");
  ASSERT_TRUE(WriteShardCheckpoint(dir, MakeCheckpoint()).ok());
  const std::string path = ShardCheckpointPath(dir, 2);
  std::string text = ReadFile(path);
  const std::string key = "\"distinct_shard_checkpoint\":" +
                          std::to_string(ShardCheckpoint::kFormatVersion);
  const size_t at = text.find(key);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, key.size(), "\"distinct_shard_checkpoint\":999");
  WriteFile(path, text);

  auto read = ReadShardCheckpoint(dir, 2);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, WrongShardIdIsDataLoss) {
  const std::string dir = MakeCheckpointDir("ckpt_wrong_shard");
  ASSERT_TRUE(WriteShardCheckpoint(dir, MakeCheckpoint()).ok());
  // Masquerade shard 2's files as shard 0's.
  fs::rename(ShardCheckpointPath(dir, 2), ShardCheckpointPath(dir, 0));
  fs::rename(ShardMarkerPath(dir, 2), ShardMarkerPath(dir, 0));

  auto read = ReadShardCheckpoint(dir, 0);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

// A write that dies between creating shard-N.json.tmp and renaming it into
// place leaves the tmp file behind; startup cleanup must remove exactly
// those, leaving data files, markers, and unrelated names alone.
TEST(CheckpointTest, CleanupRemovesOnlyOrphanedTmpFiles) {
  const std::string dir = MakeCheckpointDir("ckpt_tmp_cleanup");
  ASSERT_TRUE(WriteShardCheckpoint(dir, MakeCheckpoint()).ok());
  WriteFile(dir + "/shard-0.json.tmp", "{ torn");
  WriteFile(dir + "/shard-17.json.tmp", "");
  WriteFile(dir + "/notes.txt", "keep me");
  WriteFile(dir + "/shard-.json.tmp", "keep me too");  // no shard id

  EXPECT_EQ(CleanupCheckpointTmpFiles(dir), 2);
  EXPECT_FALSE(fs::exists(dir + "/shard-0.json.tmp"));
  EXPECT_FALSE(fs::exists(dir + "/shard-17.json.tmp"));
  EXPECT_TRUE(fs::exists(dir + "/notes.txt"));
  EXPECT_TRUE(fs::exists(dir + "/shard-.json.tmp"));
  // The completed checkpoint survives and still reads back.
  EXPECT_TRUE(ShardCheckpointComplete(dir, 2));
  EXPECT_TRUE(ReadShardCheckpoint(dir, 2).ok());
  // Second pass finds nothing.
  EXPECT_EQ(CleanupCheckpointTmpFiles(dir), 0);
}

TEST(CheckpointTest, CleanupOfMissingDirectoryIsZero) {
  const fs::path gone = fs::path(::testing::TempDir()) / "ckpt_never_made";
  fs::remove_all(gone);
  EXPECT_EQ(CleanupCheckpointTmpFiles(gone.string()), 0);
}

TEST(CheckpointTest, AssignmentSizeMismatchIsDataLoss) {
  const std::string dir = MakeCheckpointDir("ckpt_assignment");
  ASSERT_TRUE(WriteShardCheckpoint(dir, MakeCheckpoint()).ok());
  const std::string path = ShardCheckpointPath(dir, 2);
  std::string text = ReadFile(path);
  const std::string field = "\"num_refs\":4";
  const size_t at = text.find(field);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, field.size(), "\"num_refs\":9");
  WriteFile(path, text);

  auto read = ReadShardCheckpoint(dir, 2);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace distinct
