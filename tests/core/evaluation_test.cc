#include "core/evaluation.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "../test_util.h"

namespace distinct {
namespace {

class EvaluationTest : public ::testing::Test {
 protected:
  EvaluationTest() : db_(testing_util::MakeMiniDblp()) {
    DistinctConfig config;
    config.supervised = false;
    config.min_sim = 1e-3;
    auto engine = Distinct::Create(db_, DblpReferenceSpec(), config);
    DISTINCT_CHECK(engine.ok());
    engine_ = std::make_unique<Distinct>(*std::move(engine));

    mini_case_.name = "Wei Wang";
    mini_case_.num_entities = 2;
    mini_case_.publish_rows = {0, 2, 6};
    mini_case_.truth = {0, 0, 1};
    mini_case_.entity_names = {"Wei Wang @ A", "Wei Wang @ B"};
  }

  Database db_;
  std::unique_ptr<Distinct> engine_;
  AmbiguousCase mini_case_;
};

TEST_F(EvaluationTest, EvaluateCaseFillsEverything) {
  auto evaluation = EvaluateCase(*engine_, mini_case_);
  ASSERT_TRUE(evaluation.ok());
  EXPECT_EQ(evaluation->name, "Wei Wang");
  EXPECT_EQ(evaluation->num_entities, 2);
  EXPECT_EQ(evaluation->num_refs, 3u);
  EXPECT_EQ(evaluation->clustering.assignment.size(), 3u);
  EXPECT_GE(evaluation->scores.f1, 0.0);
  EXPECT_LE(evaluation->scores.f1, 1.0);
}

TEST_F(EvaluationTest, EvaluateCasesMatchesSingleCalls) {
  auto one = EvaluateCase(*engine_, mini_case_);
  auto many = EvaluateCases(*engine_, {mini_case_, mini_case_});
  ASSERT_TRUE(one.ok() && many.ok());
  ASSERT_EQ(many->size(), 2u);
  EXPECT_EQ((*many)[0].scores.f1, one->scores.f1);
  EXPECT_EQ((*many)[1].scores.f1, one->scores.f1);
}

TEST_F(EvaluationTest, AggregateAveragesUnweighted) {
  CaseEvaluation a;
  a.scores.precision = 1.0;
  a.scores.recall = 0.5;
  a.scores.f1 = 0.6;
  a.scores.accuracy = 0.9;
  CaseEvaluation b;
  b.scores.precision = 0.5;
  b.scores.recall = 1.0;
  b.scores.f1 = 0.8;
  b.scores.accuracy = 0.7;
  const AggregateScores aggregate = Aggregate({a, b});
  EXPECT_DOUBLE_EQ(aggregate.precision, 0.75);
  EXPECT_DOUBLE_EQ(aggregate.recall, 0.75);
  EXPECT_DOUBLE_EQ(aggregate.f1, 0.7);
  EXPECT_DOUBLE_EQ(aggregate.accuracy, 0.8);
}

TEST_F(EvaluationTest, AggregateOfNothingIsZero) {
  const AggregateScores aggregate = Aggregate({});
  EXPECT_DOUBLE_EQ(aggregate.f1, 0.0);
}

TEST_F(EvaluationTest, MatricesMatchDirectComputation) {
  const std::vector<AmbiguousCase> cases = {mini_case_};
  auto matrices = ComputeCaseMatrices(*engine_, cases);
  ASSERT_TRUE(matrices.ok());
  ASSERT_EQ(matrices->size(), 1u);
  EXPECT_EQ((*matrices)[0].resem.size(), 3u);
  EXPECT_EQ((*matrices)[0].ambiguous_case, &cases[0]);

  auto direct = engine_->ComputeMatrices(mini_case_.publish_rows);
  ASSERT_TRUE(direct.ok());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < i; ++j) {
      EXPECT_DOUBLE_EQ((*matrices)[0].resem.at(i, j),
                       direct->first.at(i, j));
      EXPECT_DOUBLE_EQ((*matrices)[0].walk.at(i, j),
                       direct->second.at(i, j));
    }
  }
}

TEST_F(EvaluationTest, EvaluateWithOptionsAgreesWithEvaluateCase) {
  const std::vector<AmbiguousCase> cases = {mini_case_};
  auto matrices = ComputeCaseMatrices(*engine_, cases);
  ASSERT_TRUE(matrices.ok());
  const auto evaluations =
      EvaluateWithOptions(*matrices, engine_->cluster_options());
  auto direct = EvaluateCase(*engine_, mini_case_);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(evaluations.size(), 1u);
  EXPECT_EQ(evaluations[0].scores.f1, direct->scores.f1);
  EXPECT_EQ(evaluations[0].clustering.assignment,
            direct->clustering.assignment);
}

TEST_F(EvaluationTest, BestMinSimPicksAGridValue) {
  const std::vector<AmbiguousCase> cases = {mini_case_};
  auto matrices = ComputeCaseMatrices(*engine_, cases);
  ASSERT_TRUE(matrices.ok());
  const std::vector<double> grid = DefaultMinSimGrid();
  const double best =
      BestMinSim(*matrices, engine_->cluster_options(), grid);
  EXPECT_NE(std::find(grid.begin(), grid.end(), best), grid.end());
}

TEST(MinSimGridTest, IsSortedPositive) {
  const std::vector<double> grid = DefaultMinSimGrid();
  ASSERT_GT(grid.size(), 10u);
  EXPECT_GT(grid.front(), 0.0);
  for (size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GE(grid[i], grid[i - 1]);
  }
}

}  // namespace
}  // namespace distinct
