#include "core/variants.h"

#include <set>

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(VariantsTest, SixVariantsInPaperOrder) {
  const auto variants = AllMethodVariants();
  ASSERT_EQ(variants.size(), 6u);
  EXPECT_EQ(variants.front(), MethodVariant::kDistinct);
}

TEST(VariantsTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const MethodVariant variant : AllMethodVariants()) {
    EXPECT_TRUE(names.insert(MethodVariantName(variant)).second);
  }
  EXPECT_EQ(names.size(), 6u);
  EXPECT_TRUE(names.contains("DISTINCT"));
}

TEST(VariantsTest, DistinctIsSupervisedComposite) {
  const DistinctConfig config =
      ApplyVariant(DistinctConfig{}, MethodVariant::kDistinct);
  EXPECT_TRUE(config.supervised);
  EXPECT_EQ(config.measure, ClusterMeasure::kComposite);
}

TEST(VariantsTest, UnsupervisedVariantsTurnOffTraining) {
  for (const MethodVariant variant :
       {MethodVariant::kUnsupervisedCombined,
        MethodVariant::kUnsupervisedResem,
        MethodVariant::kUnsupervisedWalk}) {
    EXPECT_FALSE(ApplyVariant(DistinctConfig{}, variant).supervised)
        << MethodVariantName(variant);
  }
}

TEST(VariantsTest, MeasureMatchesVariant) {
  EXPECT_EQ(ApplyVariant(DistinctConfig{}, MethodVariant::kSupervisedResem)
                .measure,
            ClusterMeasure::kResemblanceOnly);
  EXPECT_EQ(ApplyVariant(DistinctConfig{}, MethodVariant::kSupervisedWalk)
                .measure,
            ClusterMeasure::kWalkOnly);
  EXPECT_EQ(
      ApplyVariant(DistinctConfig{}, MethodVariant::kUnsupervisedCombined)
          .measure,
      ClusterMeasure::kComposite);
}

TEST(VariantsTest, OtherConfigFieldsPreserved) {
  DistinctConfig base;
  base.min_sim = 0.123;
  base.max_path_length = 2;
  const DistinctConfig config =
      ApplyVariant(base, MethodVariant::kUnsupervisedWalk);
  EXPECT_DOUBLE_EQ(config.min_sim, 0.123);
  EXPECT_EQ(config.max_path_length, 2);
}

}  // namespace
}  // namespace distinct
