#include "core/scan.h"

#include <gtest/gtest.h>

#include <memory>

#include "../test_util.h"
#include "dblp/generator.h"

namespace distinct {
namespace {

TEST(ScanTest, GroupsReferencesByName) {
  Database db = testing_util::MakeMiniDblp();
  auto groups = ScanNameGroups(db, DblpReferenceSpec());
  ASSERT_TRUE(groups.ok());
  // Wei Wang: 3 refs, Jiong Yang: 2 refs; others below min_refs=2.
  ASSERT_EQ(groups->size(), 2u);
  EXPECT_EQ((*groups)[0].name, "Wei Wang");
  EXPECT_EQ((*groups)[0].refs, (std::vector<int32_t>{0, 2, 6}));
  EXPECT_EQ((*groups)[1].name, "Jiong Yang");
  EXPECT_EQ((*groups)[1].refs.size(), 2u);
}

TEST(ScanTest, MinRefsFilter) {
  Database db = testing_util::MakeMiniDblp();
  ScanOptions options;
  options.min_refs = 1;
  auto groups = ScanNameGroups(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(groups.ok());
  // Everyone in Publish: Wei Wang, Jiong Yang, Jian Pei, Haixun Wang.
  EXPECT_EQ(groups->size(), 4u);
  options.min_refs = 3;
  groups = ScanNameGroups(db, DblpReferenceSpec(), options);
  EXPECT_EQ(groups->size(), 1u);
}

TEST(ScanTest, MaxRefsCap) {
  Database db = testing_util::MakeMiniDblp();
  ScanOptions options;
  options.min_refs = 1;
  options.max_refs = 2;
  auto groups = ScanNameGroups(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(groups.ok());
  for (const NameGroup& group : *groups) {
    EXPECT_LE(group.refs.size(), 2u);
    EXPECT_NE(group.name, "Wei Wang");
  }
}

/// Regression: the filters compare in int64. A min/max-refs beyond INT_MAX
/// used to be narrowed (a group size cast to int), so a bound like 2^33
/// could wrap and admit or reject the wrong groups.
TEST(ScanTest, FiltersCompareBeyondInt32) {
  Database db = testing_util::MakeMiniDblp();
  ScanOptions options;
  options.min_refs = int64_t{1} << 33;  // no group is this large
  auto groups = ScanNameGroups(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(groups.ok());
  EXPECT_TRUE(groups->empty());

  options.min_refs = 1;
  options.max_refs = int64_t{1} << 33;  // cap far above every group
  groups = ScanNameGroups(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->size(), 4u);
}

TEST(ScanTest, OrderedByDescendingRefCount) {
  Database db = testing_util::MakeMiniDblp();
  ScanOptions options;
  options.min_refs = 1;
  auto groups = ScanNameGroups(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(groups.ok());
  for (size_t i = 1; i < groups->size(); ++i) {
    EXPECT_GE((*groups)[i - 1].refs.size(), (*groups)[i].refs.size());
  }
}

TEST(ScanTest, BadSpecFails) {
  Database db = testing_util::MakeMiniDblp();
  ReferenceSpec spec = DblpReferenceSpec();
  spec.reference_table = "Ghost";
  EXPECT_FALSE(ScanNameGroups(db, spec).ok());
}

TEST(ScanTest, EngineScanMatchesDatabaseScan) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.supervised = false;
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());
  for (const int min_refs : {1, 2, 3}) {
    ScanOptions options;
    options.min_refs = min_refs;
    auto from_db = ScanNameGroups(db, DblpReferenceSpec(), options);
    auto from_index = ScanNameGroups(*engine, options);
    ASSERT_TRUE(from_db.ok());
    ASSERT_TRUE(from_index.ok());
    ASSERT_EQ(from_index->size(), from_db->size()) << min_refs;
    for (size_t g = 0; g < from_db->size(); ++g) {
      EXPECT_EQ((*from_index)[g].name, (*from_db)[g].name);
      EXPECT_EQ((*from_index)[g].refs, (*from_db)[g].refs);
    }
  }
}

class ResolveAllTest : public ::testing::Test {
 protected:
  ResolveAllTest() : db_(testing_util::MakeMiniDblp()) {
    DistinctConfig config;
    config.supervised = false;
    config.min_sim = 1e-3;
    auto engine = Distinct::Create(db_, DblpReferenceSpec(), config);
    DISTINCT_CHECK(engine.ok());
    engine_ = std::make_unique<Distinct>(*std::move(engine));
  }

  Database db_;
  std::unique_ptr<Distinct> engine_;
};

TEST_F(ResolveAllTest, ResolvesEveryGroup) {
  auto groups = ScanNameGroups(db_, DblpReferenceSpec());
  ASSERT_TRUE(groups.ok());
  std::vector<BulkResolution> results;
  auto stats = ResolveAllNames(*engine_, *groups, &results);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->names_resolved, 2);
  EXPECT_EQ(stats->total_refs, 5);
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "Wei Wang");
  // Wei Wang splits (refs 0,2 vs 6); total clusters across names >= 3.
  EXPECT_GE(stats->total_clusters, 3);
  EXPECT_GE(stats->names_split, 1);
  EXPECT_GE(stats->seconds, 0.0);
}

TEST_F(ResolveAllTest, CallbackCanAbort) {
  auto groups = ScanNameGroups(db_, DblpReferenceSpec());
  ASSERT_TRUE(groups.ok());
  int calls = 0;
  auto stats = ResolveAllNames(*engine_, *groups, nullptr,
                               [&](const BulkResolution&) {
                                 ++calls;
                                 return false;  // abort after the first
                               });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats->names_resolved, 1);
}

TEST_F(ResolveAllTest, EmptyGroupListIsFine) {
  auto stats = ResolveAllNames(*engine_, {});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->names_resolved, 0);
}

TEST_F(ResolveAllTest, ParallelMatchesSequential) {
  ScanOptions options;
  options.min_refs = 1;
  auto groups = ScanNameGroups(db_, DblpReferenceSpec(), options);
  ASSERT_TRUE(groups.ok());

  std::vector<BulkResolution> sequential;
  auto seq_stats = ResolveAllNames(*engine_, *groups, &sequential);
  ASSERT_TRUE(seq_stats.ok());

  for (const int threads : {1, 2, 4}) {
    std::vector<BulkResolution> parallel;
    auto par_stats =
        ResolveAllNamesParallel(*engine_, *groups, threads, &parallel);
    ASSERT_TRUE(par_stats.ok());
    EXPECT_EQ(par_stats->names_resolved, seq_stats->names_resolved);
    EXPECT_EQ(par_stats->total_clusters, seq_stats->total_clusters);
    EXPECT_EQ(par_stats->names_split, seq_stats->names_split);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (size_t g = 0; g < parallel.size(); ++g) {
      EXPECT_EQ(parallel[g].name, sequential[g].name);
      EXPECT_EQ(parallel[g].clustering.assignment,
                sequential[g].clustering.assignment)
          << parallel[g].name;
    }
  }
}

// One mega-name (n >= 200 refs) among many small groups: the load pattern
// the nested groups x tiles parallelism exists for. The parallel resolver
// must match the sequential one exactly at every thread count.
TEST(ResolveAllMegaGroupTest, ParallelMatchesSequentialWithMegaGroup) {
  GeneratorConfig generator;
  generator.seed = 11;
  generator.num_communities = 10;
  generator.authors_per_community = 12;
  generator.ambiguous = {{"Wei Wang", 6, 220}, {"Jing Li", 2, 12},
                         {"Hao Chen", 2, 10}};
  auto dataset = GenerateDblpDataset(generator);
  ASSERT_TRUE(dataset.ok());

  DistinctConfig config;
  config.supervised = false;
  config.promotions = DblpDefaultPromotions();
  auto engine = Distinct::Create(dataset->db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());

  ScanOptions options;
  options.min_refs = 2;
  options.max_refs = 100000;
  auto groups = ScanNameGroups(*engine, options);
  ASSERT_TRUE(groups.ok());
  ASSERT_FALSE(groups->empty());
  // Sorted by descending size: the mega-group leads, small groups follow.
  EXPECT_EQ((*groups)[0].name, "Wei Wang");
  EXPECT_GE((*groups)[0].refs.size(), 200u);
  EXPECT_GT(groups->size(), 4u);

  std::vector<BulkResolution> sequential;
  auto seq_stats = ResolveAllNames(*engine, *groups, &sequential);
  ASSERT_TRUE(seq_stats.ok());

  for (const int threads : {2, 4, 8}) {
    std::vector<BulkResolution> parallel;
    auto par_stats =
        ResolveAllNamesParallel(*engine, *groups, threads, &parallel);
    ASSERT_TRUE(par_stats.ok());
    EXPECT_EQ(par_stats->names_resolved, seq_stats->names_resolved);
    EXPECT_EQ(par_stats->total_clusters, seq_stats->total_clusters);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (size_t g = 0; g < parallel.size(); ++g) {
      EXPECT_EQ(parallel[g].name, sequential[g].name);
      EXPECT_EQ(parallel[g].num_refs, sequential[g].num_refs);
      EXPECT_EQ(parallel[g].clustering.assignment,
                sequential[g].clustering.assignment)
          << parallel[g].name << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace distinct
