#include "core/scan_shard.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "dblp/generator.h"
#include "dblp/schema.h"
#include "obs/metrics.h"

namespace distinct {
namespace {

namespace fs = std::filesystem;

NameGroup MakeGroup(const std::string& name, size_t num_refs) {
  NameGroup group;
  group.name = name;
  for (size_t r = 0; r < num_refs; ++r) {
    group.refs.push_back(static_cast<int32_t>(r));
  }
  return group;
}

TEST(PlanShardsTest, BalancesByEstimatedPairsNotGroupCount) {
  // Sizes 10, 8, 5, 3, 2, 2 -> pairs 45, 28, 10, 3, 1, 1. LPT onto two
  // shards: the 45-pair group takes shard 0 and every later group lands on
  // shard 1, which stays lighter throughout (28+10+3+1+1 = 43 < 45). A
  // count-balanced planner would have split 3/3 instead.
  std::vector<NameGroup> groups = {
      MakeGroup("a", 10), MakeGroup("b", 8), MakeGroup("c", 5),
      MakeGroup("d", 3),  MakeGroup("e", 2), MakeGroup("f", 2),
  };
  const ShardPlan plan = PlanShards(groups, 2);
  ASSERT_EQ(plan.num_shards(), 2);
  EXPECT_EQ(plan.shards[0], (std::vector<size_t>{0}));
  EXPECT_EQ(plan.shards[1], (std::vector<size_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(plan.estimated_pairs[0], 45);
  EXPECT_EQ(plan.estimated_pairs[1], 43);
}

TEST(PlanShardsTest, DeterministicAndCoversEveryGroupOnce) {
  std::vector<NameGroup> groups;
  for (size_t g = 0; g < 37; ++g) {
    groups.push_back(MakeGroup("n" + std::to_string(g), 2 + (g * 7) % 23));
  }
  for (const int num_shards : {1, 2, 7, 50}) {
    const ShardPlan plan = PlanShards(groups, num_shards);
    ASSERT_EQ(plan.num_shards(), num_shards);
    std::set<size_t> seen;
    for (const auto& shard : plan.shards) {
      for (size_t i = 1; i < shard.size(); ++i) {
        EXPECT_LT(shard[i - 1], shard[i]);  // ascending within a shard
      }
      for (const size_t g : shard) {
        EXPECT_TRUE(seen.insert(g).second) << "group planned twice";
      }
    }
    EXPECT_EQ(seen.size(), groups.size());
    // Pure function: replanning yields the identical plan (what resume
    // depends on).
    const ShardPlan again = PlanShards(groups, num_shards);
    EXPECT_EQ(again.shards, plan.shards);
    EXPECT_EQ(again.estimated_pairs, plan.estimated_pairs);
  }
}

TEST(PlanShardsTest, ZeroOrNegativeShardCountClampsToOne) {
  std::vector<NameGroup> groups = {MakeGroup("a", 3)};
  EXPECT_EQ(PlanShards(groups, 0).num_shards(), 1);
  EXPECT_EQ(PlanShards(groups, -4).num_shards(), 1);
}

/// Engine + filtered groups over a generated DBLP world with one planted
/// ambiguous name; built once for the whole suite (training is disabled, so
/// construction is propagation-only, but still worth sharing).
class ShardedScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig generator;
    generator.seed = 11;
    generator.num_communities = 8;
    generator.authors_per_community = 10;
    generator.ambiguous = {{"Wei Wang", 3, 40}, {"Jing Li", 2, 12}};
    auto dataset = GenerateDblpDataset(generator);
    DISTINCT_CHECK(dataset.ok());
    dataset_ = new DblpDataset(*std::move(dataset));

    DistinctConfig config;
    config.supervised = false;
    config.promotions = DblpDefaultPromotions();
    config.min_sim = 1e-3;
    auto engine = Distinct::Create(dataset_->db, DblpReferenceSpec(), config);
    DISTINCT_CHECK(engine.ok());
    engine_ = new Distinct(*std::move(engine));

    ScanOptions options;
    options.min_refs = 2;
    auto groups = ScanNameGroups(*engine_, options);
    DISTINCT_CHECK(groups.ok());
    DISTINCT_CHECK(groups->size() > 4);
    groups_ = new std::vector<NameGroup>(*std::move(groups));

    baseline_ = new std::vector<BulkResolution>();
    auto stats = ResolveAllNamesParallel(*engine_, *groups_, 2, baseline_);
    DISTINCT_CHECK(stats.ok());
  }

  static void TearDownTestSuite() {
    delete baseline_;
    delete groups_;
    delete engine_;
    delete dataset_;
    baseline_ = nullptr;
    groups_ = nullptr;
    engine_ = nullptr;
    dataset_ = nullptr;
  }

  static std::string MakeCheckpointDir(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
  }

  /// Asserts `results` is byte-for-byte the unsharded baseline: same order,
  /// names, sizes, assignments, and bit-identical merge similarities.
  static void ExpectMatchesBaseline(
      const std::vector<BulkResolution>& results) {
    ASSERT_EQ(results.size(), baseline_->size());
    for (size_t g = 0; g < results.size(); ++g) {
      const BulkResolution& want = (*baseline_)[g];
      const BulkResolution& got = results[g];
      ASSERT_EQ(got.name, want.name) << "group order differs at " << g;
      EXPECT_EQ(got.num_refs, want.num_refs);
      EXPECT_EQ(got.clustering.assignment, want.clustering.assignment)
          << got.name;
      EXPECT_EQ(got.clustering.num_clusters, want.clustering.num_clusters);
      ASSERT_EQ(got.clustering.merges.size(), want.clustering.merges.size())
          << got.name;
      for (size_t m = 0; m < want.clustering.merges.size(); ++m) {
        EXPECT_EQ(got.clustering.merges[m].into,
                  want.clustering.merges[m].into);
        EXPECT_EQ(got.clustering.merges[m].from,
                  want.clustering.merges[m].from);
        EXPECT_EQ(got.clustering.merges[m].similarity,
                  want.clustering.merges[m].similarity)
            << got.name << " merge " << m;
      }
    }
  }

  static DblpDataset* dataset_;
  static Distinct* engine_;
  static std::vector<NameGroup>* groups_;
  static std::vector<BulkResolution>* baseline_;
};

DblpDataset* ShardedScanTest::dataset_ = nullptr;
Distinct* ShardedScanTest::engine_ = nullptr;
std::vector<NameGroup>* ShardedScanTest::groups_ = nullptr;
std::vector<BulkResolution>* ShardedScanTest::baseline_ = nullptr;

// The acceptance bar: sharded output is byte-identical to the unsharded
// scan at shard counts 1, 2, and 7.
TEST_F(ShardedScanTest, ByteIdenticalAtEveryShardCount) {
  for (const int num_shards : {1, 2, 7}) {
    ShardedScanOptions options;
    options.num_shards = num_shards;
    options.num_threads = 2;
    auto result = RunShardedScan(*engine_, *groups_, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->shards.size(), static_cast<size_t>(num_shards));
    for (const ShardOutcome& shard : result->shards) {
      EXPECT_EQ(shard.state, ShardState::kCompleted);
      EXPECT_TRUE(shard.error.empty());
    }
    ExpectMatchesBaseline(result->results);
    EXPECT_EQ(result->stats.names_resolved,
              static_cast<int64_t>(groups_->size()));
  }
}

TEST_F(ShardedScanTest, MemoryBudgetCapsThreadsWithoutChangingResults) {
  ShardedScanOptions options;
  options.num_shards = 3;
  options.num_threads = 8;
  options.memory_budget_mb = 1;  // enough for the data, not for 8 workers
  auto result = RunShardedScan(*engine_, *groups_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const ShardOutcome& shard : result->shards) {
    ASSERT_EQ(shard.state, ShardState::kCompleted) << shard.error;
    EXPECT_GE(shard.threads_used, 1);
    EXPECT_LE(shard.threads_used, 8);
  }
  ExpectMatchesBaseline(result->results);
}

// Graceful degradation: a group with an out-of-range reference fails its
// shard; the other shards complete and the merged results simply omit the
// failed shard's groups.
TEST_F(ShardedScanTest, BadGroupFailsItsShardOnly) {
  std::vector<NameGroup> groups = *groups_;
  NameGroup bogus;
  bogus.name = "Bogus Ref";
  bogus.refs = {0, 1 << 30};
  groups.push_back(std::move(bogus));

  ShardedScanOptions options;
  options.num_shards = 4;
  auto result = RunShardedScan(*engine_, groups, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  int failed = 0;
  for (const ShardOutcome& shard : result->shards) {
    if (shard.state == ShardState::kFailed) {
      ++failed;
      EXPECT_NE(shard.error.find("Bogus Ref"), std::string::npos)
          << shard.error;
    }
  }
  EXPECT_EQ(failed, 1);
  // Every resolved group is genuine and none comes from the failed shard.
  EXPECT_LT(result->results.size(), groups.size());
  for (const BulkResolution& resolution : result->results) {
    EXPECT_NE(resolution.name, "Bogus Ref");
  }
}

TEST_F(ShardedScanTest, ResumeRequiresCheckpointDir) {
  ShardedScanOptions options;
  options.resume = true;
  auto result = RunShardedScan(*engine_, *groups_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// The resume acceptance bar: kill mid-shard (one shard's checkpoint torn,
// marker gone), resume, and the completed run is byte-identical while the
// surviving shards were loaded, not recomputed.
TEST_F(ShardedScanTest, ResumeAfterMidShardKillIsByteIdentical) {
  const std::string dir = MakeCheckpointDir("shard_resume");
  ShardedScanOptions options;
  options.num_shards = 3;
  options.num_threads = 2;
  options.checkpoint_dir = dir;

  auto first = RunShardedScan(*engine_, *groups_, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ExpectMatchesBaseline(first->results);
  for (int s = 0; s < 3; ++s) {
    EXPECT_TRUE(ShardCheckpointComplete(dir, s));
  }

  // Simulate a kill while shard 1 was being written: torn data file, no
  // marker.
  ASSERT_TRUE(fs::remove(ShardMarkerPath(dir, 1)));
  {
    std::ifstream in(ShardCheckpointPath(dir, 1), std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(ShardCheckpointPath(dir, 1),
                      std::ios::binary | std::ios::trunc);
    out << data.substr(0, data.size() / 3);
  }

  obs::SetEnabled(true);
  obs::MetricsRegistry::Global().Reset();
  options.resume = true;
  auto resumed = RunShardedScan(*engine_, *groups_, options);
  const auto metrics = obs::MetricsRegistry::Global().Snapshot();
  obs::SetEnabled(false);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  ExpectMatchesBaseline(resumed->results);
  int resumed_count = 0;
  int completed_count = 0;
  for (const ShardOutcome& shard : resumed->shards) {
    if (shard.state == ShardState::kResumed) ++resumed_count;
    if (shard.state == ShardState::kCompleted) ++completed_count;
  }
  EXPECT_EQ(resumed_count, 2);   // shards 0 and 2 loaded from disk
  EXPECT_EQ(completed_count, 1);  // shard 1 re-resolved
  EXPECT_EQ(metrics.CounterValue("scan.shards_resumed"), 2);
  EXPECT_EQ(metrics.CounterValue("scan.shards_completed"), 1);
  // The re-run rewrote shard 1's checkpoint, marker included.
  EXPECT_TRUE(ShardCheckpointComplete(dir, 1));
}

// A checkpoint that is complete but corrupt must fail the resume with a
// clean error, never silently recompute.
TEST_F(ShardedScanTest, ResumeWithCorruptCompleteCheckpointFails) {
  const std::string dir = MakeCheckpointDir("shard_corrupt");
  ShardedScanOptions options;
  options.num_shards = 2;
  options.checkpoint_dir = dir;
  ASSERT_TRUE(RunShardedScan(*engine_, *groups_, options).ok());

  std::ofstream(ShardCheckpointPath(dir, 0),
                std::ios::binary | std::ios::trunc)
      << "{ garbage";
  options.resume = true;
  auto result = RunShardedScan(*engine_, *groups_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

// Resuming under a different shard count must be rejected: the checkpoints
// bind to the plan that wrote them.
TEST_F(ShardedScanTest, ResumeWithDifferentPlanFails) {
  const std::string dir = MakeCheckpointDir("shard_replan");
  ShardedScanOptions options;
  options.num_shards = 3;
  options.checkpoint_dir = dir;
  ASSERT_TRUE(RunShardedScan(*engine_, *groups_, options).ok());

  options.num_shards = 2;
  options.resume = true;
  auto result = RunShardedScan(*engine_, *groups_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ShardedScanTest, InvalidShardCountIsRejected) {
  ShardedScanOptions options;
  options.num_shards = 0;
  auto result = RunShardedScan(*engine_, *groups_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace distinct
