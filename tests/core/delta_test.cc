#include "core/delta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/distinct.h"
#include "dblp/generator.h"
#include "dblp/schema.h"
#include "prop/link_graph.h"
#include "prop/workspace.h"
#include "sim/profile_arena.h"
#include "sim/profile_store.h"

namespace distinct {
namespace {

// Known DBLP schema column orders (dblp/schema.cc).
constexpr int kAuthorsName = 1;
constexpr int kPublicationsProc = 2;

DistinctConfig TestConfig(int num_threads = 1) {
  DistinctConfig config;
  config.supervised = false;  // uniform weights: no training-set RNG to share
  config.promotions = DblpDefaultPromotions();
  config.min_sim = 1e-3;
  config.num_threads = num_threads;
  return config;
}

int64_t MaxPrimaryKey(const Database& db, const std::string& table) {
  const Table& t = **db.FindTable(table);
  const int pk = t.primary_key_column();
  int64_t max_pk = 0;
  for (int64_t row = 0; row < t.num_rows(); ++row) {
    max_pk = std::max(max_pk, t.GetInt(row, pk));
  }
  return max_pk;
}

/// Exact comparison: names, sizes, assignments, and bit-identical merge
/// similarities — the differential contract of the incremental catalog.
void ExpectSameResolutions(const std::vector<BulkResolution>& got,
                           const std::vector<BulkResolution>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t g = 0; g < want.size(); ++g) {
    SCOPED_TRACE("name " + want[g].name);
    EXPECT_EQ(got[g].name, want[g].name);
    EXPECT_EQ(got[g].num_refs, want[g].num_refs);
    EXPECT_EQ(got[g].clustering.num_clusters, want[g].clustering.num_clusters);
    EXPECT_EQ(got[g].clustering.assignment, want[g].clustering.assignment);
    ASSERT_EQ(got[g].clustering.merges.size(), want[g].clustering.merges.size());
    for (size_t m = 0; m < want[g].clustering.merges.size(); ++m) {
      EXPECT_EQ(got[g].clustering.merges[m].into,
                want[g].clustering.merges[m].into);
      EXPECT_EQ(got[g].clustering.merges[m].from,
                want[g].clustering.merges[m].from);
      EXPECT_EQ(got[g].clustering.merges[m].similarity,
                want[g].clustering.merges[m].similarity);
    }
  }
}

void ExpectSameProfiles(const ProfileStore& got, const ProfileStore& want) {
  ASSERT_EQ(got.refs(), want.refs());
  ASSERT_EQ(got.num_paths(), want.num_paths());
  for (size_t r = 0; r < want.num_refs(); ++r) {
    const std::vector<NeighborProfile>& a = got.profiles(r);
    const std::vector<NeighborProfile>& b = want.profiles(r);
    ASSERT_EQ(a.size(), b.size());
    for (size_t p = 0; p < b.size(); ++p) {
      SCOPED_TRACE("ref position " + std::to_string(r) + " path " +
                   std::to_string(p));
      ASSERT_EQ(a[p].size(), b[p].size());
      EXPECT_EQ(a[p].truncated(), b[p].truncated());
      for (size_t e = 0; e < b[p].entries().size(); ++e) {
        EXPECT_EQ(a[p].entries()[e].tuple, b[p].entries()[e].tuple);
        EXPECT_EQ(a[p].entries()[e].forward, b[p].entries()[e].forward);
        EXPECT_EQ(a[p].entries()[e].reverse, b[p].entries()[e].reverse);
      }
    }
  }
}

void ExpectSameArenas(const ProfileArena& got, const ProfileArena& want) {
  ASSERT_EQ(got.num_refs(), want.num_refs());
  ASSERT_EQ(got.num_paths(), want.num_paths());
  for (size_t p = 0; p < want.num_paths(); ++p) {
    SCOPED_TRACE("path " + std::to_string(p));
    const ProfileArena::Path& a = got.path(p);
    const ProfileArena::Path& b = want.path(p);
    EXPECT_EQ(a.offsets, b.offsets);
    EXPECT_EQ(a.tuples, b.tuples);
    EXPECT_EQ(a.forward, b.forward);
    EXPECT_EQ(a.reverse, b.reverse);
    EXPECT_EQ(a.mass, b.mass);
    EXPECT_EQ(a.reverse_sum, b.reverse_sum);
    EXPECT_EQ(a.forward_max, b.forward_max);
    EXPECT_EQ(a.reverse_max, b.reverse_max);
  }
}

TEST(DatabaseDeltaTest, BatchesRowsPerTableInAddOrder) {
  DatabaseDelta delta;
  EXPECT_TRUE(delta.empty());
  delta.Add("A", {Value::Int(1)});
  delta.Add("B", {Value::Int(2)});
  delta.Add("A", {Value::Int(3)});
  EXPECT_EQ(delta.num_rows(), 3);
  ASSERT_EQ(delta.tables().size(), 2u);
  EXPECT_EQ(delta.tables()[0].table, "A");
  EXPECT_EQ(delta.tables()[0].rows.size(), 2u);
  EXPECT_EQ(delta.tables()[1].table, "B");
  EXPECT_EQ(delta.tables()[1].rows.size(), 1u);
  EXPECT_EQ(delta.tables()[0].rows[1][0].AsInt(), 3);
}

/// One generated DBLP world with planted ambiguity (skewed name sizes: one
/// 3-way 40-publication case, one 2-way 12-publication case, plus the
/// organic background); every mutating test copies it.
class DeltaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig generator;
    generator.seed = 11;
    generator.num_communities = 8;
    generator.authors_per_community = 10;
    generator.ambiguous = {{"Wei Wang", 3, 40}, {"Jing Li", 2, 12}};
    auto dataset = GenerateDblpDataset(generator);
    DISTINCT_CHECK(dataset.ok());
    dataset_ = new DblpDataset(*std::move(dataset));
  }

  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  /// A full copy of the generated database (MakeTailDelta with an empty
  /// tail is exactly a deep copy).
  static Database CopyDb() {
    auto split = MakeTailDelta(dataset_->db, kPublishTable, 0);
    DISTINCT_CHECK(split.ok());
    return std::move(split->first);
  }

  /// Resolves every filtered name group of a fresh batch engine over `db` —
  /// the ground truth the incremental path must reproduce.
  static std::vector<BulkResolution> BatchRebuild(const Database& db,
                                                  int num_threads = 1) {
    auto engine = Distinct::Create(db, DblpReferenceSpec(),
                                   TestConfig(num_threads));
    DISTINCT_CHECK(engine.ok());
    IncrementalCatalog catalog(*engine);
    DISTINCT_CHECK(catalog.Build().ok());
    return catalog.resolutions();
  }

  static DblpDataset* dataset_;
};

DblpDataset* DeltaTest::dataset_ = nullptr;

TEST_F(DeltaTest, MakeTailDeltaSplitsThePublishTable) {
  const int64_t total = (**dataset_->db.FindTable(kPublishTable)).num_rows();
  auto split = MakeTailDelta(dataset_->db, kPublishTable, 25);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ((**split->first.FindTable(kPublishTable)).num_rows(), total - 25);
  EXPECT_EQ(split->second.num_rows(), 25);
  // Other tables are copied whole.
  EXPECT_EQ((**split->first.FindTable(kAuthorsTable)).num_rows(),
            (**dataset_->db.FindTable(kAuthorsTable)).num_rows());
  EXPECT_FALSE(MakeTailDelta(dataset_->db, kPublishTable, total + 1).ok());
  EXPECT_FALSE(MakeTailDelta(dataset_->db, "Nope", 1).ok());
}

TEST_F(DeltaTest, LinkGraphApplyAppendMatchesFreshBuild) {
  auto split = MakeTailDelta(dataset_->db, kPublishTable, 30);
  ASSERT_TRUE(split.ok());
  Database base = std::move(split->first);

  auto build_schema = [](const Database& db) {
    auto schema = SchemaGraph::Build(db);
    DISTINCT_CHECK(schema.ok());
    for (const auto& [table, column] : DblpDefaultPromotions()) {
      DISTINCT_CHECK(schema->PromoteAttribute(table, column).ok());
    }
    return *std::move(schema);
  };

  const SchemaGraph base_schema = build_schema(base);
  auto appended = LinkGraph::Build(base_schema);
  ASSERT_TRUE(appended.ok());
  Table& publish = **base.FindMutableTable(kPublishTable);
  for (const DatabaseDelta::TableRows& batch : split->second.tables()) {
    for (const std::vector<Value>& row : batch.rows) {
      ASSERT_TRUE(publish.AppendRow(row).ok());
    }
  }
  ASSERT_TRUE(appended->ApplyAppend().ok());

  const SchemaGraph full_schema = build_schema(dataset_->db);
  auto fresh = LinkGraph::Build(full_schema);
  ASSERT_TRUE(fresh.ok());

  ASSERT_EQ(base_schema.num_nodes(), full_schema.num_nodes());
  ASSERT_EQ(base_schema.num_edges(), full_schema.num_edges());
  for (int n = 0; n < full_schema.num_nodes(); ++n) {
    EXPECT_EQ(appended->NumTuples(n), fresh->NumTuples(n)) << "node " << n;
  }
  auto as_vector = [](std::span<const int32_t> span) {
    return std::vector<int32_t>(span.begin(), span.end());
  };
  for (int e = 0; e < full_schema.num_edges(); ++e) {
    const SchemaEdge& edge = full_schema.edge(e);
    for (int32_t t = 0; t < fresh->NumTuples(edge.from_node); ++t) {
      ASSERT_EQ(as_vector(appended->Forward(e, t)),
                as_vector(fresh->Forward(e, t)))
          << "edge " << e << " forward tuple " << t;
    }
    for (int32_t t = 0; t < fresh->NumTuples(edge.to_node); ++t) {
      ASSERT_EQ(as_vector(appended->Reverse(e, t)),
                as_vector(fresh->Reverse(e, t)))
          << "edge " << e << " reverse tuple " << t;
    }
  }
}

// --- Delta validation: every rejection leaves database and engine untouched.

class DeltaValidationTest : public DeltaTest {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(CopyDb());
    auto engine = Distinct::Create(*db_, DblpReferenceSpec(), TestConfig());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<Distinct>(*std::move(engine));
    rows_before_ = db_->TotalRows();
  }

  void ExpectRejected(const DatabaseDelta& delta, StatusCode code) {
    auto report = engine_->ApplyDelta(*db_, delta);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), code) << report.status().ToString();
    // Nothing mutated: the dry run rejects before any append.
    EXPECT_EQ(db_->TotalRows(), rows_before_);
    EXPECT_EQ(engine_->catalog_version(), 0);
    EXPECT_TRUE(engine_->ResolveName("Wei Wang").ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Distinct> engine_;
  int64_t rows_before_ = 0;
};

TEST_F(DeltaValidationTest, RejectsUnknownTable) {
  DatabaseDelta delta;
  delta.Add("NoSuchTable", {Value::Int(1)});
  ExpectRejected(delta, StatusCode::kNotFound);
}

TEST_F(DeltaValidationTest, RejectsArityMismatch) {
  DatabaseDelta delta;
  delta.Add(kAuthorsTable, {Value::Int(MaxPrimaryKey(*db_, kAuthorsTable) + 1)});
  ExpectRejected(delta, StatusCode::kInvalidArgument);
}

TEST_F(DeltaValidationTest, RejectsTypeMismatch) {
  DatabaseDelta delta;
  delta.Add(kAuthorsTable, {Value::Int(MaxPrimaryKey(*db_, kAuthorsTable) + 1),
                            Value::Int(7)});  // name column expects a string
  ExpectRejected(delta, StatusCode::kInvalidArgument);
}

TEST_F(DeltaValidationTest, RejectsNullPrimaryKey) {
  DatabaseDelta delta;
  delta.Add(kAuthorsTable, {Value::Null(), Value::Str("Nobody")});
  ExpectRejected(delta, StatusCode::kInvalidArgument);
}

TEST_F(DeltaValidationTest, RejectsPrimaryKeyCollidingWithExistingRow) {
  const Table& authors = **db_->FindTable(kAuthorsTable);
  DatabaseDelta delta;
  delta.Add(kAuthorsTable, {Value::Int(authors.GetInt(0, 0)),
                            Value::Str("Impostor")});
  ExpectRejected(delta, StatusCode::kInvalidArgument);
}

TEST_F(DeltaValidationTest, RejectsDuplicatePrimaryKeyWithinTheDelta) {
  const int64_t pk = MaxPrimaryKey(*db_, kAuthorsTable) + 1;
  DatabaseDelta delta;
  delta.Add(kAuthorsTable, {Value::Int(pk), Value::Str("First")});
  delta.Add(kAuthorsTable, {Value::Int(pk), Value::Str("Second")});
  ExpectRejected(delta, StatusCode::kInvalidArgument);
}

TEST_F(DeltaValidationTest, RejectsDanglingForeignKey) {
  const Table& publish = **db_->FindTable(kPublishTable);
  DatabaseDelta delta;
  delta.Add(kPublishTable,
            {Value::Int(MaxPrimaryKey(*db_, kPublishTable) + 1),
             Value::Int(99999999), publish.GetValue(0, 2)});
  ExpectRejected(delta, StatusCode::kFailedPrecondition);
}

TEST_F(DeltaValidationTest, RejectsTheWrongDatabaseInstance) {
  Database other = CopyDb();
  auto report = engine_->ApplyDelta(other, DatabaseDelta{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// --- The differential harness: incremental must equal batch rebuild.

TEST_F(DeltaTest, TailAppendMatchesBatchRebuild) {
  auto split = MakeTailDelta(dataset_->db, kPublishTable, 40);
  ASSERT_TRUE(split.ok());
  Database db = std::move(split->first);

  auto engine = Distinct::Create(db, DblpReferenceSpec(), TestConfig());
  ASSERT_TRUE(engine.ok());
  IncrementalCatalog catalog(*engine);
  ASSERT_TRUE(catalog.Build().ok());

  auto report = catalog.Apply(db, split->second);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_appended, 40);
  EXPECT_EQ(report->new_refs, 40);
  EXPECT_EQ(report->catalog_version, 1);
  EXPECT_EQ(engine->catalog_version(), 1);
  EXPECT_EQ(report->tuple_watermark, db.TotalRows());
  EXPECT_FALSE(report->dirty_names.empty());
  EXPECT_EQ(report->names_reused + report->names_reresolved,
            static_cast<int64_t>(catalog.resolutions().size()));
  // The point of the delta path: most names are untouched and reuse their
  // cached resolution.
  EXPECT_GT(report->names_reused, 0);

  ExpectSameResolutions(catalog.resolutions(), BatchRebuild(db));
}

TEST_F(DeltaTest, HubPaperAndNewAmbiguousAuthorMatchBatchRebuild) {
  Database db = CopyDb();
  auto engine = Distinct::Create(db, DblpReferenceSpec(), TestConfig());
  ASSERT_TRUE(engine.ok());
  IncrementalCatalog catalog(*engine);
  ASSERT_TRUE(catalog.Build().ok());

  const Table& authors = **db.FindTable(kAuthorsTable);
  const Table& publications = **db.FindTable(kPublicationsTable);
  int64_t next_author = MaxPrimaryKey(db, kAuthorsTable) + 1;
  int64_t next_paper = MaxPrimaryKey(db, kPublicationsTable) + 1;
  int64_t next_pub = MaxPrimaryKey(db, kPublishTable) + 1;

  DatabaseDelta delta;
  // A hub paper: the two planted ambiguous names plus ten background
  // authors all on one publication. This is the merging stressor — every
  // pair of its authors gains a shared neighbor, which can pull previously
  // split clusters together.
  const int64_t hub_paper = next_paper++;
  delta.Add(kPublicationsTable, {Value::Int(hub_paper), Value::Str("Hub"),
                                 publications.GetValue(0, kPublicationsProc)});
  int background = 0;
  int hub_rows = 0;
  for (int64_t row = 0; row < authors.num_rows(); ++row) {
    const std::string& name = authors.GetString(row, kAuthorsName);
    const bool ambiguous = name == "Wei Wang" || name == "Jing Li";
    if (!ambiguous && background >= 10) {
      continue;
    }
    background += ambiguous ? 0 : 1;
    ++hub_rows;
    delta.Add(kPublishTable, {Value::Int(next_pub++),
                              Value::Int(authors.GetInt(row, 0)),
                              Value::Int(hub_paper)});
  }
  // A brand-new author whose name collides with a planted case, publishing
  // two papers (one of them new — FK onto a row of this same delta). Their
  // group splits: a new reference cluster appears out of nothing.
  const int64_t new_author = next_author++;
  const int64_t new_paper = next_paper++;
  delta.Add(kAuthorsTable, {Value::Int(new_author), Value::Str("Jing Li")});
  delta.Add(kPublicationsTable,
            {Value::Int(new_paper), Value::Str("Fresh Results"),
             publications.GetValue(0, kPublicationsProc)});
  delta.Add(kPublishTable, {Value::Int(next_pub++), Value::Int(new_author),
                            Value::Int(new_paper)});
  delta.Add(kPublishTable, {Value::Int(next_pub++), Value::Int(new_author),
                            Value::Int(publications.GetInt(0, 0))});

  auto report = catalog.Apply(db, delta);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->new_refs, static_cast<int64_t>(hub_rows) + 2);
  const auto& dirty = report->dirty_names;
  EXPECT_NE(std::find(dirty.begin(), dirty.end(), "Wei Wang"), dirty.end());
  EXPECT_NE(std::find(dirty.begin(), dirty.end(), "Jing Li"), dirty.end());

  ExpectSameResolutions(catalog.resolutions(), BatchRebuild(db));
}

TEST_F(DeltaTest, SequentialDeltasCompose) {
  auto outer = MakeTailDelta(dataset_->db, kPublishTable, 20);
  ASSERT_TRUE(outer.ok());
  auto inner = MakeTailDelta(outer->first, kPublishTable, 20);
  ASSERT_TRUE(inner.ok());
  Database db = std::move(inner->first);

  auto engine = Distinct::Create(db, DblpReferenceSpec(), TestConfig());
  ASSERT_TRUE(engine.ok());
  IncrementalCatalog catalog(*engine);
  ASSERT_TRUE(catalog.Build().ok());

  ASSERT_TRUE(catalog.Apply(db, inner->second).ok());
  ExpectSameResolutions(catalog.resolutions(), BatchRebuild(db));
  auto report = catalog.Apply(db, outer->second);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->catalog_version, 2);
  ExpectSameResolutions(catalog.resolutions(), BatchRebuild(db));
}

// Exercised by the TSan job (this binary carries the `parallel` label):
// the incremental path with a worker pool — profile builds fan out over
// shared memo + workspaces — must produce the same bits as the serial
// batch rebuild.
TEST_F(DeltaTest, ParallelIncrementalMatchesSerialBatchRebuild) {
  auto split = MakeTailDelta(dataset_->db, kPublishTable, 40);
  ASSERT_TRUE(split.ok());
  Database db = std::move(split->first);

  auto engine = Distinct::Create(db, DblpReferenceSpec(), TestConfig(4));
  ASSERT_TRUE(engine.ok());
  IncrementalCatalog catalog(*engine);
  ASSERT_TRUE(catalog.Build().ok());
  ASSERT_TRUE(catalog.Apply(db, split->second).ok());

  ExpectSameResolutions(catalog.resolutions(),
                        BatchRebuild(db, /*num_threads=*/1));
}

// cache_artifacts=false trades Apply latency for memory but must land on
// exactly the same catalog as the splicing path and the batch rebuild.
TEST_F(DeltaTest, UncachedArtifactsCatalogMatchesCachedOne) {
  auto split = MakeTailDelta(dataset_->db, kPublishTable, 40);
  ASSERT_TRUE(split.ok());

  Database cached_db = std::move(split->first);
  auto cached_engine =
      Distinct::Create(cached_db, DblpReferenceSpec(), TestConfig());
  ASSERT_TRUE(cached_engine.ok());
  IncrementalCatalog cached(*cached_engine);
  ASSERT_TRUE(cached.Build().ok());
  ASSERT_TRUE(cached.Apply(cached_db, split->second).ok());

  auto resplit = MakeTailDelta(dataset_->db, kPublishTable, 40);
  ASSERT_TRUE(resplit.ok());
  Database uncached_db = std::move(resplit->first);
  auto uncached_engine =
      Distinct::Create(uncached_db, DblpReferenceSpec(), TestConfig());
  ASSERT_TRUE(uncached_engine.ok());
  IncrementalCatalog uncached(*uncached_engine, ScanOptions{},
                              /*cache_artifacts=*/false);
  ASSERT_TRUE(uncached.Build().ok());
  ASSERT_TRUE(uncached.Apply(uncached_db, resplit->second).ok());

  ExpectSameResolutions(uncached.resolutions(), cached.resolutions());
  ExpectSameResolutions(cached.resolutions(), BatchRebuild(cached_db));
}

// The report's dirty-reference list is the splice contract: ascending,
// duplicate-free, aligned with its per-path masks, and covering every
// appended reference row.
TEST_F(DeltaTest, DirtyRefsAreSortedAndCoverAppendedRows) {
  auto split = MakeTailDelta(dataset_->db, kPublishTable, 40);
  ASSERT_TRUE(split.ok());
  Database db = std::move(split->first);
  const int64_t base_rows = (**db.FindTable(kPublishTable)).num_rows();

  auto engine = Distinct::Create(db, DblpReferenceSpec(), TestConfig());
  ASSERT_TRUE(engine.ok());
  auto report = engine->ApplyDelta(db, split->second);
  ASSERT_TRUE(report.ok());

  const std::vector<int32_t>& dirty = report->dirty_refs;
  ASSERT_EQ(report->dirty_ref_path_masks.size(), dirty.size());
  EXPECT_TRUE(std::is_sorted(dirty.begin(), dirty.end()));
  EXPECT_EQ(std::adjacent_find(dirty.begin(), dirty.end()), dirty.end());
  for (const uint64_t mask : report->dirty_ref_path_masks) {
    EXPECT_NE(mask, 0u);  // a dirty reference is dirty on some path
  }
  for (int64_t row = base_rows; row < base_rows + report->new_refs; ++row) {
    EXPECT_TRUE(std::binary_search(dirty.begin(), dirty.end(),
                                   static_cast<int32_t>(row)))
        << "appended reference row " << row;
  }
}

TEST_F(DeltaTest, PatchResolveArtifactsRejectsNonPrefixRefs) {
  Database db = CopyDb();
  auto engine = Distinct::Create(db, DblpReferenceSpec(), TestConfig());
  ASSERT_TRUE(engine.ok());
  auto refs = engine->RefsForName("Wei Wang");
  ASSERT_TRUE(refs.ok());
  ASSERT_GE(refs->size(), 3u);
  auto artifacts = engine->ResolveRefsArtifacts(*refs);
  ASSERT_TRUE(artifacts.ok());

  std::vector<int32_t> reordered = *refs;
  std::swap(reordered.front(), reordered.back());
  auto patched = engine->PatchResolveArtifacts(*std::move(artifacts),
                                               reordered, /*dirty_refs=*/{});
  EXPECT_EQ(patched.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DeltaTest, EmptyDeltaDirtiesNothing) {
  Database db = CopyDb();
  auto engine = Distinct::Create(db, DblpReferenceSpec(), TestConfig());
  ASSERT_TRUE(engine.ok());
  auto report = engine->ApplyDelta(db, DatabaseDelta{});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_appended, 0);
  EXPECT_EQ(report->new_refs, 0);
  EXPECT_TRUE(report->dirty_names.empty());
  EXPECT_EQ(report->catalog_version, 1);  // the version still ticks
}

// --- The serving-path seam: splice updates of store and arena.

TEST_F(DeltaTest, ProfileStoreUpdateMatchesFullBuildAfterDelta) {
  auto split = MakeTailDelta(dataset_->db, kPublishTable, 40);
  ASSERT_TRUE(split.ok());
  Database db = std::move(split->first);
  auto engine = Distinct::Create(db, DblpReferenceSpec(), TestConfig());
  ASSERT_TRUE(engine.ok());

  auto before = engine->RefsForName("Wei Wang");
  ASSERT_TRUE(before.ok());
  ASSERT_GE(before->size(), 2u);
  const PropagationOptions& options = engine->config().propagation;
  ProfileStore store =
      ProfileStore::Build(engine->propagation_engine(), engine->paths(),
                          options, *before);
  ProfileArena arena = ProfileArena::FromStore(store);

  auto report = engine->ApplyDelta(db, split->second);
  ASSERT_TRUE(report.ok());

  auto after = engine->RefsForName("Wei Wang");
  ASSERT_TRUE(after.ok());
  ASSERT_GT(after->size(), before->size());  // the tail held Wei Wang rows
  ASSERT_TRUE(std::equal(before->begin(), before->end(), after->begin()));

  // Conservative splice: every old position dirty, new refs appended.
  std::vector<size_t> positions(before->size());
  std::iota(positions.begin(), positions.end(), size_t{0});
  const std::vector<int32_t> appended(after->begin() + before->size(),
                                      after->end());
  store.Update(engine->propagation_engine(), engine->paths(), options,
               positions, appended);
  const ProfileStore full =
      ProfileStore::Build(engine->propagation_engine(), engine->paths(),
                          options, *after);
  ExpectSameProfiles(store, full);
  for (const int32_t ref : *after) {
    EXPECT_GE(store.IndexOf(ref), 0);
  }

  arena.PatchFromStore(store, positions);
  ExpectSameArenas(arena, ProfileArena::FromStore(full));
}

TEST_F(DeltaTest, CleanNameProfilesSurviveTheDeltaVerbatim) {
  auto split = MakeTailDelta(dataset_->db, kPublishTable, 40);
  ASSERT_TRUE(split.ok());
  Database db = std::move(split->first);
  auto engine = Distinct::Create(db, DblpReferenceSpec(), TestConfig());
  ASSERT_TRUE(engine.ok());

  IncrementalCatalog probe(*engine);  // only used to enumerate names
  ASSERT_TRUE(probe.Build().ok());
  std::vector<std::string> names;
  for (const BulkResolution& resolution : probe.resolutions()) {
    names.push_back(resolution.name);
  }

  auto report = engine->ApplyDelta(db, split->second);
  ASSERT_TRUE(report.ok());
  // Pick a name the delta did not dirty; its profiles must be identical
  // before and after — that is what licenses the catalog's reuse.
  std::string clean;
  for (const std::string& name : names) {
    if (std::find(report->dirty_names.begin(), report->dirty_names.end(),
                  name) == report->dirty_names.end()) {
      clean = name;
      break;
    }
  }
  ASSERT_FALSE(clean.empty()) << "every name dirty — grow the corpus";

  auto refs = engine->RefsForName(clean);
  ASSERT_TRUE(refs.ok());
  const PropagationOptions& options = engine->config().propagation;
  ProfileStore store =
      ProfileStore::Build(engine->propagation_engine(), engine->paths(),
                          options, *refs);
  // No positions, no new refs: Update must be a no-op that still equals a
  // full rebuild, proving the kept-verbatim profiles are genuinely
  // unchanged by the append.
  store.Update(engine->propagation_engine(), engine->paths(), options, {}, {});
  ExpectSameProfiles(store, ProfileStore::Build(engine->propagation_engine(),
                                                engine->paths(), options,
                                                *refs));
}

// --- SubtreeCache targeted invalidation.

TEST(SubtreeCacheEraseTest, DropsOnlyTheTargetedEntries) {
  SubtreeCache cache(1 << 20);
  SubtreeDistribution dist;
  dist.entries = {{7, 0.5, 0.25}};
  dist.instances = 1.0;
  cache.Insert(0, 11, dist);
  cache.Insert(0, 12, dist);
  cache.Insert(3, 11, dist);

  EXPECT_EQ(cache.Erase(0, {11, 99}), 1);  // 99 was never resident
  EXPECT_EQ(cache.Find(0, 11), nullptr);
  EXPECT_NE(cache.Find(0, 12), nullptr);   // same path, different tuple
  EXPECT_NE(cache.Find(3, 11), nullptr);   // same tuple, different path
  EXPECT_EQ(cache.stats().entries, 2);
  // Erase is idempotent, and re-inserting after an erase works (the stale
  // FIFO key left behind must not corrupt eviction bookkeeping).
  EXPECT_EQ(cache.Erase(0, {11}), 0);
  cache.Insert(0, 11, dist);
  EXPECT_NE(cache.Find(0, 11), nullptr);
}

TEST(SubtreeCacheEraseTest, DisabledCacheErasesNothing) {
  SubtreeCache cache(0);
  SubtreeDistribution dist;
  cache.Insert(0, 1, dist);
  EXPECT_EQ(cache.Erase(0, {1}), 0);
}

}  // namespace
}  // namespace distinct
