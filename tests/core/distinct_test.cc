#include "core/distinct.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "dblp/generator.h"

namespace distinct {
namespace {

/// An unsupervised engine on the mini database (too small to train on).
Distinct MiniEngine(const Database& db) {
  DistinctConfig config;
  config.supervised = false;
  config.promotions = DblpDefaultPromotions();
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  DISTINCT_CHECK(engine.ok());
  return *std::move(engine);
}

TEST(DistinctTest, CreateBuildsPathsAndUniformModel) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  EXPECT_EQ(engine.paths().size(), 18u);
  EXPECT_EQ(engine.model().num_paths(), 18u);
  for (const double w : engine.model().resem_weights()) {
    EXPECT_DOUBLE_EQ(w, 1.0 / 18.0);
  }
  EXPECT_EQ(engine.report().num_paths, 18);
}

TEST(DistinctTest, RefsForNameFindsAllReferences) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  auto refs = engine.RefsForName("Wei Wang");
  ASSERT_TRUE(refs.ok());
  EXPECT_EQ(*refs, (std::vector<int32_t>{0, 2, 6}));
  auto none = engine.RefsForName("Nobody");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(DistinctTest, ResolveNameUnknownNameIsNotFound) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  EXPECT_EQ(engine.ResolveName("Nobody").status().code(),
            StatusCode::kNotFound);
}

TEST(DistinctTest, ResolveNameClustersAllRefs) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  auto result = engine.ResolveName("Wei Wang");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->refs.size(), 3u);
  EXPECT_EQ(result->clustering.assignment.size(), 3u);
  EXPECT_GE(result->clustering.num_clusters, 1);
  EXPECT_LE(result->clustering.num_clusters, 3);
}

TEST(DistinctTest, MatricesAreSymmetricAndSized) {
  Database db = testing_util::MakeMiniDblp();
  Distinct engine = MiniEngine(db);
  auto refs = engine.RefsForName("Wei Wang");
  auto matrices = engine.ComputeMatrices(*refs);
  ASSERT_TRUE(matrices.ok());
  EXPECT_EQ(matrices->first.size(), 3u);
  EXPECT_EQ(matrices->second.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < i; ++j) {
      EXPECT_GE(matrices->first.at(i, j), 0.0);
      EXPECT_GE(matrices->second.at(i, j), 0.0);
    }
  }
}

TEST(DistinctTest, MinSimControlsGranularity) {
  Database db = testing_util::MakeMiniDblp();

  DistinctConfig loose;
  loose.supervised = false;
  loose.min_sim = 1e-9;
  auto loose_engine = Distinct::Create(db, DblpReferenceSpec(), loose);
  ASSERT_TRUE(loose_engine.ok());
  auto merged = loose_engine->ResolveName("Wei Wang");
  ASSERT_TRUE(merged.ok());

  DistinctConfig strict;
  strict.supervised = false;
  strict.min_sim = 1e9;
  auto strict_engine = Distinct::Create(db, DblpReferenceSpec(), strict);
  ASSERT_TRUE(strict_engine.ok());
  auto split = strict_engine->ResolveName("Wei Wang");
  ASSERT_TRUE(split.ok());

  EXPECT_LE(merged->clustering.num_clusters,
            split->clustering.num_clusters);
  EXPECT_EQ(split->clustering.num_clusters, 3);
}

TEST(DistinctTest, ClusterOptionsMirrorConfig) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.supervised = false;
  config.min_sim = 0.25;
  config.measure = ClusterMeasure::kWalkOnly;
  config.combine = CombineRule::kArithmeticMean;
  config.stopping = StoppingRule::kLargestGap;
  config.incremental = false;
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());
  const AgglomerativeOptions options = engine->cluster_options();
  EXPECT_DOUBLE_EQ(options.min_sim, 0.25);
  EXPECT_EQ(options.measure, ClusterMeasure::kWalkOnly);
  EXPECT_EQ(options.combine, CombineRule::kArithmeticMean);
  EXPECT_EQ(options.stopping, StoppingRule::kLargestGap);
  EXPECT_FALSE(options.incremental);
}

TEST(DistinctTest, CreateFailsOnBadSpec) {
  Database db = testing_util::MakeMiniDblp();
  ReferenceSpec spec = DblpReferenceSpec();
  spec.reference_table = "Ghost";
  EXPECT_FALSE(Distinct::Create(db, spec, DistinctConfig{}).ok());
}

TEST(DistinctTest, CreateFailsOnBadPromotion) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.supervised = false;
  config.promotions = {{"Ghost", "column"}};
  EXPECT_FALSE(Distinct::Create(db, DblpReferenceSpec(), config).ok());
}

TEST(DistinctTest, CreateWithModelInstallsWeights) {
  Database db = testing_util::MakeMiniDblp();
  Distinct trained = MiniEngine(db);
  // Pretend the uniform model was trained elsewhere; round-trip it.
  SimilarityModel model = trained.model();

  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  auto engine =
      Distinct::CreateWithModel(db, DblpReferenceSpec(), config, model);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->model().num_paths(), trained.model().num_paths());
  EXPECT_FALSE(engine->config().supervised);  // never trains
  // Resolution works.
  EXPECT_TRUE(engine->ResolveName("Wei Wang").ok());
}

TEST(DistinctTest, CreateWithModelRejectsWrongWidth) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  const SimilarityModel tiny = SimilarityModel::Uniform(2);
  EXPECT_FALSE(
      Distinct::CreateWithModel(db, DblpReferenceSpec(), config, tiny).ok());
}

TEST(DistinctTest, CreateWithModelDetectsSchemaDrift) {
  Database db = testing_util::MakeMiniDblp();
  Distinct trained = MiniEngine(db);
  // Right width, wrong path names.
  std::vector<std::string> names(trained.model().num_paths(),
                                 "Some -other-> Path");
  SimilarityModel drifted(trained.model().resem_weights(),
                          trained.model().walk_weights(), std::move(names));
  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  const auto engine =
      Distinct::CreateWithModel(db, DblpReferenceSpec(), config, drifted);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().message().find("different schema"),
            std::string::npos);
}

TEST(DistinctTest, SupervisedTrainingOnGeneratedData) {
  GeneratorConfig generator;
  generator.seed = 11;
  generator.num_communities = 10;
  generator.authors_per_community = 20;
  generator.ambiguous = {{"Wei Wang", 3, 20}};
  auto dataset = GenerateDblpDataset(generator);
  ASSERT_TRUE(dataset.ok());

  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  config.training.num_positive = 80;
  config.training.num_negative = 80;
  auto engine = Distinct::Create(dataset->db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());

  const TrainingReport& report = engine->report();
  EXPECT_EQ(report.num_training_pairs, 160u);
  EXPECT_GT(report.num_unique_refs, 0u);
  // Half the negatives are hard (linked pairs), so training accuracy is
  // far from perfect by construction; it just has to beat chance clearly.
  EXPECT_GT(report.train_accuracy_resem, 0.6);
  EXPECT_GT(report.train_accuracy_walk, 0.6);
  // Learned weights: normalized to sum 1.
  double total = 0.0;
  for (const double w : engine->model().resem_weights()) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Path names attached.
  EXPECT_EQ(engine->model().path_names().size(), engine->paths().size());
}

TEST(DistinctTest, AutoMinSimInstallsSuggestedThreshold) {
  GeneratorConfig generator;
  generator.seed = 19;
  generator.num_communities = 12;
  generator.authors_per_community = 20;
  generator.ambiguous = {{"Wei Wang", 4, 30}};
  auto dataset = GenerateDblpDataset(generator);
  ASSERT_TRUE(dataset.ok());

  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  config.training.num_positive = 150;
  config.training.num_negative = 150;
  config.auto_min_sim = true;
  auto engine = Distinct::Create(dataset->db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());

  EXPECT_GT(engine->report().suggested_min_sim, 0.0);
  EXPECT_LT(engine->report().suggested_min_sim, 1.0);
  EXPECT_DOUBLE_EQ(engine->config().min_sim,
                   engine->report().suggested_min_sim);
  EXPECT_DOUBLE_EQ(engine->cluster_options().min_sim,
                   engine->report().suggested_min_sim);
}

TEST(DistinctTest, AutoMinSimOffLeavesConfigUntouched) {
  GeneratorConfig generator;
  generator.seed = 19;
  generator.num_communities = 12;
  generator.authors_per_community = 20;
  generator.ambiguous = {{"Wei Wang", 4, 30}};
  auto dataset = GenerateDblpDataset(generator);
  ASSERT_TRUE(dataset.ok());

  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  config.training.num_positive = 150;
  config.training.num_negative = 150;
  config.min_sim = 0.123;
  auto engine = Distinct::Create(dataset->db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());
  // Suggested value is still reported, but not installed.
  EXPECT_GT(engine->report().suggested_min_sim, 0.0);
  EXPECT_DOUBLE_EQ(engine->config().min_sim, 0.123);
}

}  // namespace
}  // namespace distinct
