#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace distinct {
namespace {

TEST(PipelineTest, PromotedSchemaGraphHasAttributeNodes) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  auto graph = BuildPromotedSchemaGraph(db, config);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ((*graph)->num_nodes(), db.num_tables() + 3);
  EXPECT_EQ((*graph)->num_edges(), 4 + 3);
}

TEST(PipelineTest, BadPromotionFails) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.promotions = {{"Proceedings", "no_such_column"}};
  EXPECT_FALSE(BuildPromotedSchemaGraph(db, config).ok());
}

TEST(PipelineTest, ReferencePathsExcludeIdentityFirstStep) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.max_path_length = 3;
  auto graph = BuildPromotedSchemaGraph(db, config);
  ASSERT_TRUE(graph.ok());
  auto resolved = ResolveReferenceSpec(db, DblpReferenceSpec());
  ASSERT_TRUE(resolved.ok());

  const auto paths = EnumerateReferencePaths(**graph, *resolved, config);
  for (const JoinPath& path : paths) {
    const SchemaEdge& first = (*graph)->edge(path.steps.front().edge_id);
    const bool is_identity_forward =
        path.steps.front().forward &&
        first.table_id == resolved->reference_table_id &&
        first.column == resolved->identity_column;
    EXPECT_FALSE(is_identity_forward) << path.Describe(**graph);
  }
}

TEST(PipelineTest, IdentityFirstStepCanBeEnabled) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.max_path_length = 2;
  config.exclude_identity_first_step = false;
  auto graph = BuildPromotedSchemaGraph(db, config);
  auto resolved = ResolveReferenceSpec(db, DblpReferenceSpec());
  const auto with = EnumerateReferencePaths(**graph, *resolved, config);

  config.exclude_identity_first_step = true;
  const auto without = EnumerateReferencePaths(**graph, *resolved, config);
  EXPECT_GT(with.size(), without.size());
}

TEST(PipelineTest, MaxPathLengthRespected) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.max_path_length = 2;
  auto graph = BuildPromotedSchemaGraph(db, config);
  auto resolved = ResolveReferenceSpec(db, DblpReferenceSpec());
  for (const JoinPath& path :
       EnumerateReferencePaths(**graph, *resolved, config)) {
    EXPECT_LE(path.length(), 2);
  }
}

}  // namespace
}  // namespace distinct
