// Integration: the full pipeline on the hand-built mini database, where we
// can reason about what the clustering should do.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/distinct.h"
#include "core/evaluation.h"
#include "sim/resemblance.h"

namespace distinct {
namespace {

TEST(MiniWorldTest, LinkedWeiWangsAreMoreSimilarThanUnlinked) {
  // Refs 0 and 2 share coauthor Jiong Yang; ref 6's only coauthor is Jian
  // Pei, who never collaborates with the others. So sim(0,2) must dominate
  // sim(0,6) and sim(2,6).
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.supervised = false;
  // No attribute promotions: with uniform (unsupervised) weights the shared
  // location of papers 0 and 2 would drown the coauthor signal — exactly
  // the noise the paper's supervised weighting is designed to suppress.
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());

  auto matrices = engine->ComputeMatrices({0, 2, 6});
  ASSERT_TRUE(matrices.ok());
  const PairMatrix& resem = matrices->first;
  EXPECT_GT(resem.at(0, 1), resem.at(0, 2));
  EXPECT_GT(resem.at(0, 1), resem.at(1, 2));
  const PairMatrix& walk = matrices->second;
  EXPECT_GT(walk.at(0, 1), walk.at(0, 2));
}

TEST(MiniWorldTest, ClusteringSplitsTheUnlinkedReference) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.supervised = false;
  // Threshold between the linked pair's similarity and the noise floor.
  config.min_sim = 1e-3;
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());

  auto result = engine->ResolveName("Wei Wang");
  ASSERT_TRUE(result.ok());
  const std::vector<int>& assignment = result->clustering.assignment;
  ASSERT_EQ(assignment.size(), 3u);
  // Refs 0 and 2 (indices 0,1) together; ref 6 (index 2) apart.
  EXPECT_EQ(assignment[0], assignment[1]);
  EXPECT_NE(assignment[0], assignment[2]);
}

TEST(MiniWorldTest, EvaluationHelpersScoreTheMiniCase) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.supervised = false;
  config.min_sim = 1e-3;
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());

  // Pretend refs 0,2 belong to entity 0 and ref 6 to entity 1.
  AmbiguousCase mini_case;
  mini_case.name = "Wei Wang";
  mini_case.num_entities = 2;
  mini_case.publish_rows = {0, 2, 6};
  mini_case.truth = {0, 0, 1};
  mini_case.entity_names = {"Wei Wang @ A", "Wei Wang @ B"};

  auto evaluation = EvaluateCase(*engine, mini_case);
  ASSERT_TRUE(evaluation.ok());
  EXPECT_DOUBLE_EQ(evaluation->scores.f1, 1.0);
  EXPECT_EQ(evaluation->clustering.num_clusters, 2);

  const AggregateScores aggregate = Aggregate({*evaluation});
  EXPECT_DOUBLE_EQ(aggregate.f1, 1.0);
}

TEST(MiniWorldTest, SweepHelpersFindAReasonableMinSim) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.supervised = false;
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());

  AmbiguousCase mini_case;
  mini_case.name = "Wei Wang";
  mini_case.num_entities = 2;
  mini_case.publish_rows = {0, 2, 6};
  mini_case.truth = {0, 0, 1};

  const std::vector<AmbiguousCase> cases = {mini_case};
  auto matrices = ComputeCaseMatrices(*engine, cases);
  ASSERT_TRUE(matrices.ok());
  AgglomerativeOptions options = engine->cluster_options();
  const double best = BestMinSim(*matrices, options, DefaultMinSimGrid());
  options.min_sim = best;
  const auto evaluations = EvaluateWithOptions(*matrices, options);
  EXPECT_DOUBLE_EQ(Aggregate(evaluations).f1, 1.0);
}

}  // namespace
}  // namespace distinct
