// The tentpole's acceptance differential: resolver output over an ingested
// mmap catalog is bit-identical to the in-memory XML loader path. Same
// synthetic corpus, two roads into a Database (stream-ingest -> columnar
// catalog -> MaterializeDatabase vs LoadDblpXmlFile), then every resolved
// name group must agree exactly — assignments, cluster counts, and merge
// similarities compared as exact doubles, not within tolerance.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "catalog/ingest.h"
#include "catalog/reader.h"
#include "core/distinct.h"
#include "dblp/schema.h"
#include "dblp/xml_corpus.h"
#include "dblp/xml_loader.h"

namespace distinct {
namespace {

DistinctConfig UnsupervisedConfig() {
  DistinctConfig config;
  config.supervised = false;  // uniform weights: deterministic, no training
  // The XML loader fills every conference with one placeholder publisher;
  // promote only year/location so uniform weights aren't glued together by
  // the constant attribute (same setup as xml_pipeline_test).
  config.promotions = {{kProceedingsTable, "year"},
                       {kProceedingsTable, "location"}};
  config.min_sim = 1e-3;
  return config;
}

class IngestDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::string base = ::testing::TempDir() + "/ingest_differential";
    const std::string xml_path = base + ".xml";
    const std::string catalog_dir = base + ".catalog";
    std::filesystem::remove_all(catalog_dir);

    XmlCorpusConfig corpus;
    corpus.seed = 4711;
    corpus.target_refs = 3000;
    ASSERT_TRUE(WriteSyntheticDblpXml(xml_path, corpus).ok());

    auto loaded = LoadDblpXmlFile(xml_path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    loaded_db_ = new Database(std::move(loaded->db));

    catalog::IngestOptions options;
    options.segment_papers = 256;  // many segments, not one
    auto stats = catalog::IngestDblpXml(xml_path, catalog_dir, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    auto reader = catalog::CatalogReader::Open(catalog_dir);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    auto materialized = (*reader)->MaterializeDatabase();
    ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
    catalog_db_ = new Database(std::move(materialized->db));
    generation_ = (*reader)->generation();

    std::remove(xml_path.c_str());
    std::filesystem::remove_all(catalog_dir);
  }

  static void TearDownTestSuite() {
    delete loaded_db_;
    delete catalog_db_;
    loaded_db_ = nullptr;
    catalog_db_ = nullptr;
  }

  static Database* loaded_db_;
  static Database* catalog_db_;
  static int64_t generation_;
};

Database* IngestDifferentialTest::loaded_db_ = nullptr;
Database* IngestDifferentialTest::catalog_db_ = nullptr;
int64_t IngestDifferentialTest::generation_ = 0;

TEST_F(IngestDifferentialTest, ResolverOutputIsBitIdentical) {
  auto loaded_engine =
      Distinct::Create(*loaded_db_, DblpReferenceSpec(), UnsupervisedConfig());
  ASSERT_TRUE(loaded_engine.ok()) << loaded_engine.status().ToString();
  auto catalog_engine = Distinct::Create(*catalog_db_, DblpReferenceSpec(),
                                         UnsupervisedConfig());
  ASSERT_TRUE(catalog_engine.ok()) << catalog_engine.status().ToString();

  // Both engines index the same name groups in the same order.
  const auto& groups = loaded_engine->name_groups();
  ASSERT_EQ(groups.size(), catalog_engine->name_groups().size());

  int resolved = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    const auto& [name, refs] = groups[g];
    ASSERT_EQ(name, catalog_engine->name_groups()[g].first);
    ASSERT_EQ(refs, catalog_engine->name_groups()[g].second);
    if (refs.size() < 2 || refs.size() > 40) {
      continue;  // singletons are trivially identical; huge groups are slow
    }
    auto expected = loaded_engine->ResolveName(name);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto actual = catalog_engine->ResolveName(name);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();

    EXPECT_EQ(actual->refs, expected->refs) << "name " << name;
    EXPECT_EQ(actual->clustering.assignment, expected->clustering.assignment)
        << "name " << name;
    EXPECT_EQ(actual->clustering.num_clusters,
              expected->clustering.num_clusters)
        << "name " << name;
    ASSERT_EQ(actual->clustering.merges.size(),
              expected->clustering.merges.size())
        << "name " << name;
    for (size_t m = 0; m < expected->clustering.merges.size(); ++m) {
      EXPECT_EQ(actual->clustering.merges[m].into,
                expected->clustering.merges[m].into);
      EXPECT_EQ(actual->clustering.merges[m].from,
                expected->clustering.merges[m].from);
      // Exact double equality: the similarity graph must be the same
      // bits, not merely close.
      EXPECT_EQ(actual->clustering.merges[m].similarity,
                expected->clustering.merges[m].similarity)
          << "name " << name << " merge " << m;
    }
    if (++resolved >= 25) {
      break;  // bounded runtime; coverage across many group sizes
    }
  }
  EXPECT_GE(resolved, 10) << "corpus produced too few multi-ref names";
}

TEST_F(IngestDifferentialTest, CatalogGenerationStampsTheEngine) {
  DistinctConfig config = UnsupervisedConfig();
  config.base_catalog_version = generation_;
  auto engine = Distinct::Create(*catalog_db_, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->catalog_version(), generation_);
  EXPECT_NE(generation_, 0);
}

}  // namespace
}  // namespace distinct
