// Property tests over randomly configured generated worlds: structural
// invariants that must hold for ANY seed/shape, not just the tuned default.

#include <gtest/gtest.h>

#include "core/distinct.h"
#include "dblp/generator.h"
#include "dblp/schema.h"
#include "dblp/stats.h"
#include "prop/propagation.h"

namespace distinct {
namespace {

struct WorldShape {
  uint64_t seed;
  int communities;
  int authors_per_community;
  double papers_per_year;
  int entities;
  int refs;
};

class RandomWorldTest : public ::testing::TestWithParam<WorldShape> {
 protected:
  static GeneratorConfig ConfigFor(const WorldShape& shape) {
    GeneratorConfig config;
    config.seed = shape.seed;
    config.num_communities = shape.communities;
    config.authors_per_community = shape.authors_per_community;
    config.papers_per_community_year = shape.papers_per_year;
    config.ambiguous = {{"Wei Wang", shape.entities, shape.refs}};
    return config;
  }
};

TEST_P(RandomWorldTest, IntegrityAndExactCounts) {
  auto dataset = GenerateDblpDataset(ConfigFor(GetParam()));
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset->db.ValidateIntegrity().ok());
  ASSERT_EQ(dataset->cases.size(), 1u);
  EXPECT_EQ(dataset->cases[0].publish_rows.size(),
            static_cast<size_t>(GetParam().refs));
  EXPECT_EQ(*CountReferencesForName(dataset->db, DblpReferenceSpec(),
                                    "Wei Wang"),
            GetParam().refs);
}

TEST_P(RandomWorldTest, ForwardMassConservesWithoutExclusion) {
  auto dataset = GenerateDblpDataset(ConfigFor(GetParam()));
  ASSERT_TRUE(dataset.ok());

  auto schema = SchemaGraph::Build(dataset->db);
  ASSERT_TRUE(schema.ok());
  for (const auto& [table, column] : DblpDefaultPromotions()) {
    ASSERT_TRUE(schema->PromoteAttribute(table, column).ok());
  }
  auto link = LinkGraph::Build(*schema);
  ASSERT_TRUE(link.ok());
  PropagationEngine engine(*link);

  PathEnumerationOptions enumeration;
  enumeration.max_length = 4;
  const auto paths = EnumerateJoinPaths(
      *schema, *dataset->db.TableId(kPublishTable), enumeration);
  PropagationOptions options;
  options.exclude_start_tuple = false;

  // Sample a handful of references; every path conserves probability mass
  // because the generator never emits NULL foreign keys.
  const auto& refs = dataset->cases[0].publish_rows;
  for (size_t s = 0; s < refs.size(); s += std::max<size_t>(refs.size() / 4, 1)) {
    for (const JoinPath& path : paths) {
      const NeighborProfile profile =
          engine.Compute(path, refs[s], options);
      EXPECT_NEAR(profile.ForwardSum(), 1.0, 1e-9)
          << path.Describe(*schema);
    }
  }
}

TEST_P(RandomWorldTest, UnsupervisedResolutionIsWellFormed) {
  auto dataset = GenerateDblpDataset(ConfigFor(GetParam()));
  ASSERT_TRUE(dataset.ok());
  DistinctConfig config;
  config.supervised = false;
  config.promotions = DblpDefaultPromotions();
  auto engine = Distinct::Create(dataset->db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());
  auto result = engine->ResolveName("Wei Wang");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->refs.size(), static_cast<size_t>(GetParam().refs));
  EXPECT_GE(result->clustering.num_clusters, 1);
  EXPECT_LE(result->clustering.num_clusters, GetParam().refs);
  // Dense cluster ids.
  for (const int id : result->clustering.assignment) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, result->clustering.num_clusters);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomWorldTest,
    ::testing::Values(WorldShape{1, 4, 8, 4.0, 2, 8},
                      WorldShape{2, 12, 15, 6.0, 5, 30},
                      WorldShape{3, 6, 25, 10.0, 3, 24},
                      WorldShape{99, 20, 10, 3.0, 8, 40},
                      WorldShape{7, 3, 40, 12.0, 2, 60}));

}  // namespace
}  // namespace distinct
