// Integration: the full pipeline over a database loaded from DBLP-shaped
// XML — exercises NULL locations (the loader leaves location NULL), shared
// venue linkage, and unsupervised resolution end to end.

#include <gtest/gtest.h>

#include "core/distinct.h"
#include "dblp/schema.h"
#include "dblp/xml_loader.h"

namespace distinct {
namespace {

constexpr char kXml[] = R"(<?xml version="1.0"?>
<dblp>
  <inproceedings key="a"><author>Wei Wang</author>
    <author>Jiong Yang</author><author>Richard Muntz</author>
    <title>P1</title><booktitle>VLDB</booktitle><year>1997</year>
  </inproceedings>
  <inproceedings key="b"><author>Wei Wang</author>
    <author>Jiong Yang</author>
    <title>P2</title><booktitle>VLDB</booktitle><year>1998</year>
  </inproceedings>
  <inproceedings key="c"><author>Wei Wang</author>
    <author>Xuemin Lin</author>
    <title>P3</title><booktitle>ICDE</booktitle><year>2001</year>
  </inproceedings>
  <inproceedings key="d"><author>Wei Wang</author>
    <author>Xuemin Lin</author>
    <title>P4</title><booktitle>ADMA</booktitle><year>2005</year>
  </inproceedings>
  <article key="e"><author>Jiong Yang</author><author>Philip S. Yu</author>
    <title>P5</title><journal>TKDE</journal><year>2003</year>
  </article>
</dblp>)";

class XmlPipelineTest : public ::testing::Test {
 protected:
  XmlPipelineTest() {
    auto loaded = LoadDblpXml(kXml);
    DISTINCT_CHECK(loaded.ok());
    db_ = std::make_unique<Database>(std::move(loaded->db));

    DistinctConfig config;
    config.supervised = false;
    // No publisher promotion: the XML loader fills every conference with
    // the same placeholder publisher, which under uniform (unsupervised)
    // weights would glue every pair together. (The supervised model learns
    // a zero weight for such constant attributes instead.)
    config.promotions = {{kProceedingsTable, "year"},
                         {kProceedingsTable, "location"}};
    config.min_sim = 1e-3;
    auto engine = Distinct::Create(*db_, DblpReferenceSpec(), config);
    DISTINCT_CHECK(engine.ok());
    engine_ = std::make_unique<Distinct>(*std::move(engine));
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Distinct> engine_;
};

TEST_F(XmlPipelineTest, NullLocationsAreTolerated) {
  // The loader stores NULL locations; promotion + propagation must not
  // choke on them (mass through the location path is simply lost).
  auto result = engine_->ResolveName("Wei Wang");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->refs.size(), 4u);
}

TEST_F(XmlPipelineTest, CoauthorLinkageGroupsTheRightPapers) {
  auto result = engine_->ResolveName("Wei Wang");
  ASSERT_TRUE(result.ok());
  const auto& assignment = result->clustering.assignment;
  ASSERT_EQ(assignment.size(), 4u);
  // Papers a,b share Jiong Yang; papers c,d share Xuemin Lin. The two
  // groups share nothing.
  EXPECT_EQ(assignment[0], assignment[1]);
  EXPECT_EQ(assignment[2], assignment[3]);
  EXPECT_NE(assignment[0], assignment[2]);
}

TEST_F(XmlPipelineTest, LinkedReferencesOfOneAuthorMerge) {
  auto result = engine_->ResolveName("Jiong Yang");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->refs.size(), 3u);
  // The two VLDB papers share coauthor Wei Wang and must merge; the TKDE
  // article shares nothing with them (different coauthor, venue, year),
  // so it rightly stays apart — the recall limit the paper reports.
  const auto& assignment = result->clustering.assignment;
  EXPECT_EQ(assignment[0], assignment[1]);
  EXPECT_NE(assignment[0], assignment[2]);
}

}  // namespace
}  // namespace distinct
