// Integration: train DISTINCT on a generated database and check it beats
// trivial baselines on the planted ambiguous names. Uses a reduced world so
// the suite stays fast.

#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "core/variants.h"
#include "dblp/schema.h"

namespace distinct {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig generator;
    generator.seed = 17;
    generator.num_communities = 16;
    generator.authors_per_community = 20;
    generator.papers_per_community_year = 8.0;
    generator.ambiguous = {
        {"Wei Wang", 6, 50},
        {"Bing Liu", 4, 40},
        {"Jim Smith", 3, 15},
    };
    auto dataset = GenerateDblpDataset(generator);
    DISTINCT_CHECK(dataset.ok());
    dataset_ = new DblpDataset(*std::move(dataset));

    DistinctConfig config;
    config.promotions = DblpDefaultPromotions();
    config.training.num_positive = 300;
    config.training.num_negative = 300;
    auto engine = Distinct::Create(dataset_->db, DblpReferenceSpec(),
                                   config);
    DISTINCT_CHECK(engine.ok());
    engine_ = new Distinct(*std::move(engine));
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete dataset_;
    engine_ = nullptr;
    dataset_ = nullptr;
  }

  static DblpDataset* dataset_;
  static Distinct* engine_;
};

DblpDataset* EndToEndTest::dataset_ = nullptr;
Distinct* EndToEndTest::engine_ = nullptr;

TEST_F(EndToEndTest, BeatsTrivialBaselinesOnEveryCase) {
  auto evaluations = EvaluateCases(*engine_, dataset_->cases);
  ASSERT_TRUE(evaluations.ok());
  for (const CaseEvaluation& evaluation : *evaluations) {
    // Trivial baseline 1: everything in one cluster (f1 = recall-heavy).
    const std::vector<int> all_one(evaluation.num_refs, 0);
    const AmbiguousCase* c = nullptr;
    for (const AmbiguousCase& candidate : dataset_->cases) {
      if (candidate.name == evaluation.name) c = &candidate;
    }
    ASSERT_NE(c, nullptr);
    const double merge_all_f1 =
        PairwisePrecisionRecall(c->truth, all_one).f1;
    // Trivial baseline 2: all singletons (f1 = 0).
    EXPECT_GT(evaluation.scores.f1, merge_all_f1)
        << evaluation.name << ": " << evaluation.scores.DebugString();
    EXPECT_GT(evaluation.scores.f1, 0.5) << evaluation.name;
  }
}

TEST_F(EndToEndTest, LearnedWeightsPreferCoauthorPaths) {
  // The heaviest resemblance weight must sit on a path through a second
  // Publish hop or Authors (coauthor-flavored), not on a year/location
  // path.
  const SimilarityModel& model = engine_->model();
  size_t best = 0;
  for (size_t p = 1; p < model.num_paths(); ++p) {
    if (model.resem_weights()[p] > model.resem_weights()[best]) {
      best = p;
    }
  }
  const std::string& name = model.path_names()[best];
  EXPECT_NE(name.find("Authors"), std::string::npos) << name;
}

TEST_F(EndToEndTest, SupervisedCompositeBeatsUnsupervisedBaselines) {
  auto supervised_matrices =
      ComputeCaseMatrices(*engine_, dataset_->cases);
  ASSERT_TRUE(supervised_matrices.ok());
  AgglomerativeOptions options = engine_->cluster_options();
  const AggregateScores distinct_scores =
      Aggregate(EvaluateWithOptions(*supervised_matrices, options));

  DistinctConfig unsupervised_config;
  unsupervised_config.promotions = DblpDefaultPromotions();
  unsupervised_config.supervised = false;
  auto unsupervised =
      Distinct::Create(dataset_->db, DblpReferenceSpec(),
                       unsupervised_config);
  ASSERT_TRUE(unsupervised.ok());
  auto unsupervised_matrices =
      ComputeCaseMatrices(*unsupervised, dataset_->cases);
  ASSERT_TRUE(unsupervised_matrices.ok());

  for (const ClusterMeasure measure :
       {ClusterMeasure::kResemblanceOnly, ClusterMeasure::kWalkOnly}) {
    AgglomerativeOptions baseline_options;
    baseline_options.measure = measure;
    baseline_options.min_sim = BestMinSim(
        *unsupervised_matrices, baseline_options, DefaultMinSimGrid());
    const AggregateScores baseline = Aggregate(
        EvaluateWithOptions(*unsupervised_matrices, baseline_options));
    EXPECT_GT(distinct_scores.f1 + 1e-9, baseline.f1);
  }
}

TEST_F(EndToEndTest, ResolveNameAgreesWithCaseRows) {
  for (const AmbiguousCase& c : dataset_->cases) {
    auto refs = engine_->RefsForName(c.name);
    ASSERT_TRUE(refs.ok());
    EXPECT_EQ(*refs, c.publish_rows) << c.name;
  }
}

TEST_F(EndToEndTest, TrainingReportIsFilled) {
  const TrainingReport& report = engine_->report();
  EXPECT_EQ(report.num_training_pairs, 600u);
  EXPECT_GT(report.num_paths, 10);
  EXPECT_GT(report.seconds_total, 0.0);
  EXPECT_GE(report.seconds_total,
            report.seconds_features + report.seconds_svm - 1e-6);
}

}  // namespace
}  // namespace distinct
