// On-disk columnar catalog: dictionary round-trip through mmap, segment
// column views, and the reopen/corruption contract — corrupt CRCs and
// foreign format versions are rejected, a catalog killed mid-ingest (no
// manifest) reads as NotFound, and a fresh ingest over the debris succeeds.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "catalog/format.h"
#include "catalog/reader.h"
#include "catalog/writer.h"
#include "common/io_util.h"
#include "gtest/gtest.h"

namespace distinct {
namespace catalog {
namespace {

DblpRecord MakeRecord(std::vector<std::string> authors, std::string title,
                      std::string venue, int64_t year) {
  DblpRecord record;
  record.authors = std::move(authors);
  record.title = std::move(title);
  record.venue = std::move(venue);
  record.year = year;
  return record;
}

/// Five papers over three venues and four authors, venue of the last one
/// empty (exercising the unknown-venue substitution).
std::vector<DblpRecord> SampleRecords() {
  return {
      MakeRecord({"Wei Wang", "Jiong Yang"}, "P0", "VLDB", 1997),
      MakeRecord({"Wei Wang"}, "P1", "ICDE", 2001),
      MakeRecord({"Xuemin Lin", "Wei Wang"}, "P2", "VLDB", 1998),
      MakeRecord({"Philip S. Yu"}, "P3", "TKDE", 2003),
      MakeRecord({"Jiong Yang", "Philip S. Yu"}, "P4", "", -1),
  };
}

class ColumnarCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/columnar_catalog_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes SampleRecords() into a fresh catalog at dir_.
  CatalogSummary WriteSampleCatalog(int64_t segment_papers = 1 << 16) {
    CatalogWriterOptions options;
    options.dir = dir_;
    options.segment_papers = segment_papers;
    auto writer = CatalogWriter::Create(options);
    EXPECT_TRUE(writer.ok()) << writer.status().ToString();
    for (const DblpRecord& record : SampleRecords()) {
      EXPECT_TRUE((*writer)->Add(record).ok());
    }
    auto summary = (*writer)->Finish(/*records_skipped=*/7);
    EXPECT_TRUE(summary.ok()) << summary.status().ToString();
    return *summary;
  }

  /// Flips one byte of `file` at `at` (negative counts from the end).
  void CorruptByte(const std::string& file, int64_t at) {
    const std::string path = dir_ + "/" + file;
    auto data = ReadFileToString(path);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    const size_t index = at >= 0 ? static_cast<size_t>(at)
                                 : data->size() + static_cast<size_t>(at);
    ASSERT_LT(index, data->size());
    (*data)[index] ^= 0x01;
    ASSERT_TRUE(WriteStringToFile(path, *data).ok());
  }

  std::string dir_;
};

TEST_F(ColumnarCatalogTest, DictionaryRoundTripThroughMmap) {
  const CatalogSummary summary = WriteSampleCatalog();
  EXPECT_EQ(summary.num_papers, 5);
  EXPECT_EQ(summary.num_refs, 8);
  EXPECT_EQ(summary.records_skipped, 7);

  auto reader = CatalogReader::Open(dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->num_papers(), 5);
  EXPECT_EQ((*reader)->num_refs(), 8);
  EXPECT_EQ((*reader)->records_skipped(), 7);
  EXPECT_EQ((*reader)->generation(), summary.generation);

  // Ids are first-appearance order in the record stream.
  const DictView& authors = (*reader)->authors();
  ASSERT_EQ(authors.size(), 4u);
  EXPECT_EQ(authors.At(0), "Wei Wang");
  EXPECT_EQ(authors.At(1), "Jiong Yang");
  EXPECT_EQ(authors.At(2), "Xuemin Lin");
  EXPECT_EQ(authors.At(3), "Philip S. Yu");

  // Find inverts At for every id, and misses cleanly.
  for (uint32_t id = 0; id < authors.size(); ++id) {
    auto found = authors.Find(authors.At(id));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, id);
  }
  EXPECT_FALSE(authors.Find("Nobody At All").has_value());
  EXPECT_FALSE(authors.Find("").has_value());

  const DictView& venues = (*reader)->venues();
  ASSERT_EQ(venues.size(), 4u);
  EXPECT_EQ(venues.At(0), "VLDB");
  EXPECT_EQ(venues.At(1), "ICDE");
  EXPECT_EQ(venues.At(2), "TKDE");
  EXPECT_EQ(venues.At(3), kUnknownVenue);  // empty venue substituted

  const DictView& titles = (*reader)->titles();
  ASSERT_EQ(titles.size(), 5u);
  for (uint32_t id = 0; id < titles.size(); ++id) {
    EXPECT_EQ(titles.At(id), "P" + std::to_string(id));
  }
}

TEST_F(ColumnarCatalogTest, SegmentColumnsRoundTrip) {
  WriteSampleCatalog(/*segment_papers=*/2);  // 5 papers -> 3 segments
  auto reader = CatalogReader::Open(dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  const auto& segments = (*reader)->segments();
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].paper_base, 0);
  EXPECT_EQ(segments[1].paper_base, 2);
  EXPECT_EQ(segments[2].paper_base, 4);

  const std::vector<DblpRecord> expected = SampleRecords();
  size_t paper = 0;
  for (const SegmentView& segment : segments) {
    ASSERT_EQ(segment.ref_begin.size(),
              static_cast<size_t>(segment.num_papers) + 1);
    for (int64_t p = 0; p < segment.num_papers; ++p, ++paper) {
      const DblpRecord& record = expected[paper];
      EXPECT_EQ(segment.year[static_cast<size_t>(p)], record.year);
      EXPECT_EQ((*reader)->titles().At(segment.title_id[static_cast<size_t>(p)]),
                record.title);
      const std::string venue =
          record.venue.empty() ? kUnknownVenue : record.venue;
      EXPECT_EQ((*reader)->venues().At(segment.venue_id[static_cast<size_t>(p)]),
                venue);
      const uint32_t begin = segment.ref_begin[static_cast<size_t>(p)];
      const uint32_t end = segment.ref_begin[static_cast<size_t>(p) + 1];
      ASSERT_EQ(end - begin, record.authors.size());
      for (uint32_t r = begin; r < end; ++r) {
        EXPECT_EQ((*reader)->authors().At(segment.author_id[r]),
                  record.authors[r - begin]);
      }
    }
  }
  EXPECT_EQ(paper, expected.size());
}

TEST_F(ColumnarCatalogTest, CorruptDictionaryBlobIsDataLoss) {
  WriteSampleCatalog();
  CorruptByte(kAuthorsDictFile, 40);  // inside the offsets/blob region
  auto reader = CatalogReader::Open(dir_);
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss)
      << reader.status().ToString();
}

TEST_F(ColumnarCatalogTest, CorruptSegmentPayloadIsDataLoss) {
  WriteSampleCatalog();
  CorruptByte(SegmentFileName(0), 48);  // inside the year column
  auto reader = CatalogReader::Open(dir_);
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST_F(ColumnarCatalogTest, CorruptCrcTrailerIsDataLoss) {
  WriteSampleCatalog();
  CorruptByte(kTitlesDictFile, -1);  // last byte = CRC trailer
  auto reader = CatalogReader::Open(dir_);
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST_F(ColumnarCatalogTest, ForeignFormatVersionIsFailedPrecondition) {
  WriteSampleCatalog();
  CorruptByte(kVenuesDictFile, 4);  // version field, bytes [4, 8)
  auto reader = CatalogReader::Open(dir_);
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition)
      << reader.status().ToString();
  EXPECT_NE(reader.status().ToString().find("format version"),
            std::string::npos);
}

TEST_F(ColumnarCatalogTest, ForeignMagicIsDataLoss) {
  WriteSampleCatalog();
  CorruptByte(SegmentFileName(0), 0);
  auto reader = CatalogReader::Open(dir_);
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST_F(ColumnarCatalogTest, TruncatedSegmentIsDataLoss) {
  WriteSampleCatalog();
  const std::string path = dir_ + "/" + SegmentFileName(0);
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(
      WriteStringToFile(path, data->substr(0, data->size() / 2)).ok());
  auto reader = CatalogReader::Open(dir_);
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST_F(ColumnarCatalogTest, NeverIngestedDirectoryIsNotFound) {
  std::filesystem::create_directories(dir_);
  auto reader = CatalogReader::Open(dir_);
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST_F(ColumnarCatalogTest, DeletedManifestIsNotFound) {
  WriteSampleCatalog();
  std::remove((dir_ + "/" + kManifestFile).c_str());
  auto reader = CatalogReader::Open(dir_);
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST_F(ColumnarCatalogTest, ReopenAfterKillMidIngestThenReingest) {
  // A "killed" ingest: segments hit the disk (segment_papers=1 forces
  // per-record flushes) but Finish never runs, so no manifest exists.
  {
    CatalogWriterOptions options;
    options.dir = dir_;
    options.segment_papers = 1;
    auto writer = CatalogWriter::Create(options);
    ASSERT_TRUE(writer.ok());
    for (const DblpRecord& record : SampleRecords()) {
      ASSERT_TRUE((*writer)->Add(record).ok());
    }
    // Writer destroyed without Finish -- the crash.
  }
  EXPECT_TRUE(
      std::filesystem::exists(dir_ + "/" + SegmentFileName(0)));
  auto reader = CatalogReader::Open(dir_);
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);

  // A fresh ingest over the debris sweeps it and commits cleanly.
  const CatalogSummary summary = WriteSampleCatalog();
  auto reopened = CatalogReader::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_papers(), 5);
  EXPECT_EQ((*reopened)->generation(), summary.generation);
  // The stale per-record segments are gone; only the fresh single segment
  // plus dictionaries and manifest remain.
  EXPECT_FALSE(
      std::filesystem::exists(dir_ + "/" + SegmentFileName(1)));
}

TEST_F(ColumnarCatalogTest, EachIngestGetsADistinctNonZeroGeneration) {
  const CatalogSummary first = WriteSampleCatalog();
  const CatalogSummary second = WriteSampleCatalog();
  EXPECT_NE(first.generation, 0);
  EXPECT_NE(second.generation, 0);
  EXPECT_NE(first.generation, second.generation);
}

TEST_F(ColumnarCatalogTest, TinyBudgetIsResourceExhausted) {
  CatalogWriterOptions options;
  options.dir = dir_;
  options.memory_budget_bytes = 4 << 10;  // far below one arena block
  auto writer = CatalogWriter::Create(options);
  ASSERT_TRUE(writer.ok());
  const Status status = (*writer)->Add(SampleRecords()[0]);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
      << status.ToString();
}

}  // namespace
}  // namespace catalog
}  // namespace distinct
