// Streaming ingest differential: a catalog ingested from dblp.xml and
// materialized back through the mmap reader must be bit-identical to what
// the in-memory loader builds from the same bytes — same tables, same row
// order, same dictionary ids (compared on raw cell payloads).

#include <filesystem>
#include <string>

#include "catalog/ingest.h"
#include "catalog/reader.h"
#include "common/io_util.h"
#include "dblp/xml_corpus.h"
#include "dblp/xml_loader.h"
#include "gtest/gtest.h"
#include "relational/database.h"

namespace distinct {
namespace catalog {
namespace {

/// Every cell of every table, raw payloads plus decoded strings. Two
/// databases with equal dumps agree on schema, row order, dictionary ids,
/// and string content — the bit-identity contract.
std::string DumpDatabase(const Database& db) {
  std::string out;
  for (int t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    out += table.DebugString() + "\n";
    for (int64_t row = 0; row < table.num_rows(); ++row) {
      for (int c = 0; c < table.num_columns(); ++c) {
        out += std::to_string(table.raw(row, c));
        if (table.column(c).type == ColumnType::kString &&
            !table.IsNull(row, c)) {
          out += "=" + table.GetString(row, c);
        }
        out += "|";
      }
      out += "\n";
    }
  }
  return out;
}

class CatalogIngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string base =
        ::testing::TempDir() + "/catalog_ingest_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    xml_path_ = base + ".xml";
    catalog_dir_ = base + ".catalog";
    std::filesystem::remove_all(catalog_dir_);
  }
  void TearDown() override {
    std::filesystem::remove(xml_path_);
    std::filesystem::remove_all(catalog_dir_);
  }

  XmlCorpusStats WriteCorpus(int64_t target_refs) {
    XmlCorpusConfig config;
    config.seed = 20070415;
    config.target_refs = target_refs;
    config.noise_element_prob = 0.05;  // make skip-counting observable
    auto stats = WriteSyntheticDblpXml(xml_path_, config);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return *stats;
  }

  std::string xml_path_;
  std::string catalog_dir_;
};

TEST_F(CatalogIngestTest, MaterializedCatalogIsBitIdenticalToLoader) {
  const XmlCorpusStats corpus = WriteCorpus(/*target_refs=*/2000);

  IngestOptions options;
  options.segment_papers = 128;  // force many segments
  options.read_chunk_bytes = 4096;
  auto stats = IngestDblpXml(xml_path_, catalog_dir_, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records, corpus.papers);
  EXPECT_EQ(stats->summary.num_refs, corpus.refs);
  EXPECT_GT(stats->skipped, 0);  // <www>/<phdthesis> noise
  EXPECT_GT(stats->summary.num_segments, 4);
  EXPECT_EQ(stats->bytes_read, corpus.bytes);

  auto reader = CatalogReader::Open(catalog_dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto materialized = (*reader)->MaterializeDatabase();
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();

  auto loaded = LoadDblpXmlFile(xml_path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(materialized->records_loaded, loaded->records_loaded);
  EXPECT_EQ(materialized->records_skipped, loaded->records_skipped);
  EXPECT_EQ(DumpDatabase(materialized->db), DumpDatabase(loaded->db));
}

TEST_F(CatalogIngestTest, MinRefsFilterMatchesInMemoryLoader) {
  WriteCorpus(/*target_refs=*/2000);
  ASSERT_TRUE(IngestDblpXml(xml_path_, catalog_dir_).ok());
  auto reader = CatalogReader::Open(catalog_dir_);
  ASSERT_TRUE(reader.ok());

  XmlLoadOptions load_options;
  load_options.min_refs_per_author = 3;  // the paper's pruning rule
  auto materialized = (*reader)->MaterializeDatabase(load_options);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  auto loaded = LoadDblpXmlFile(xml_path_, load_options);
  ASSERT_TRUE(loaded.ok());

  // The filter must actually bite for this to mean anything.
  auto unfiltered = (*reader)->MaterializeDatabase();
  ASSERT_TRUE(unfiltered.ok());
  EXPECT_LT(materialized->db.TotalRows(), unfiltered->db.TotalRows());
  EXPECT_EQ(DumpDatabase(materialized->db), DumpDatabase(loaded->db));
}

TEST_F(CatalogIngestTest, BudgetExceededIsResourceExhaustedAndUncommitted) {
  WriteCorpus(/*target_refs=*/500);
  IngestOptions options;
  options.memory_budget_mb = 1;  // below the dictionaries' arena blocks
  auto stats = IngestDblpXml(xml_path_, catalog_dir_, options);
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted)
      << stats.status().ToString();
  // The failed ingest must not have committed a manifest.
  auto reader = CatalogReader::Open(catalog_dir_);
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST_F(CatalogIngestTest, MissingXmlFileIsNotFound) {
  auto stats = IngestDblpXml(xml_path_ + ".nope", catalog_dir_);
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST_F(CatalogIngestTest, TruncatedXmlFailsWithoutCommitting) {
  ASSERT_TRUE(WriteStringToFile(
                  xml_path_,
                  "<dblp><article key=\"a\"><author>A. Author</author>")
                  .ok());
  auto stats = IngestDblpXml(xml_path_, catalog_dir_);
  EXPECT_EQ(stats.status().code(), StatusCode::kDataLoss)
      << stats.status().ToString();
  auto reader = CatalogReader::Open(catalog_dir_);
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace catalog
}  // namespace distinct
