#include "svm/model_io.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(ModelIoTest, RoundTripExact) {
  const LinearSvmModel model({0.1, -2.5e-7, 3.14159265358979},
                             -0.4999999999999999);
  auto parsed = ParseSvmModel(SerializeSvmModel(model));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->weights().size(), 3u);
  for (size_t f = 0; f < 3; ++f) {
    EXPECT_DOUBLE_EQ(parsed->weights()[f], model.weights()[f]);
  }
  EXPECT_DOUBLE_EQ(parsed->bias(), model.bias());
}

TEST(ModelIoTest, EmptyWeights) {
  const LinearSvmModel model({}, 1.0);
  auto parsed = ParseSvmModel(SerializeSvmModel(model));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->weights().empty());
}

TEST(ModelIoTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n\ndistinct-svm-model v1\n# more\nbias 0.5\n"
      "weights 1\n0.25\n\n";
  auto parsed = ParseSvmModel(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->bias(), 0.5);
  EXPECT_DOUBLE_EQ(parsed->weights()[0], 0.25);
}

TEST(ModelIoTest, RejectsCorruptedInputs) {
  EXPECT_FALSE(ParseSvmModel("").ok());
  EXPECT_FALSE(ParseSvmModel("wrong-magic v9\nbias 0\nweights 0\n").ok());
  EXPECT_FALSE(
      ParseSvmModel("distinct-svm-model v1\nbias x\nweights 0\n").ok());
  EXPECT_FALSE(
      ParseSvmModel("distinct-svm-model v1\nbias 0\nweights 2\n1.0\n").ok());
  EXPECT_FALSE(
      ParseSvmModel("distinct-svm-model v1\nbias 0\nweights 1\nzz\n").ok());
  EXPECT_FALSE(
      ParseSvmModel("distinct-svm-model v1\nweights 0\nbias 0\n").ok());
}

TEST(ModelIoTest, FileRoundTrip) {
  const LinearSvmModel model({1.5, -0.5}, 2.0);
  const std::string path = ::testing::TempDir() + "/svm_model_test.txt";
  ASSERT_TRUE(SaveSvmModel(model, path).ok());
  auto loaded = LoadSvmModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->weights()[0], 1.5);
  EXPECT_DOUBLE_EQ(loaded->weights()[1], -0.5);
  EXPECT_DOUBLE_EQ(loaded->bias(), 2.0);
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadSvmModel("/no/such/model.txt").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace distinct
