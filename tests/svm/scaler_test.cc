#include "svm/scaler.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(ScalerTest, ScalesByMaxAbs) {
  MaxAbsScaler scaler;
  scaler.Fit({{2.0, -4.0}, {1.0, 3.0}});
  EXPECT_DOUBLE_EQ(scaler.scales()[0], 2.0);
  EXPECT_DOUBLE_EQ(scaler.scales()[1], 4.0);
  const std::vector<double> scaled = scaler.Transform({1.0, 2.0});
  EXPECT_DOUBLE_EQ(scaled[0], 0.5);
  EXPECT_DOUBLE_EQ(scaled[1], 0.5);
}

TEST(ScalerTest, ZeroFeatureGetsScaleOne) {
  MaxAbsScaler scaler;
  scaler.Fit({{0.0, 1.0}, {0.0, 2.0}});
  EXPECT_DOUBLE_EQ(scaler.scales()[0], 1.0);
  EXPECT_DOUBLE_EQ(scaler.Transform({0.0, 1.0})[0], 0.0);
}

TEST(ScalerTest, TransformAll) {
  MaxAbsScaler scaler;
  scaler.Fit({{10.0}});
  const auto all = scaler.TransformAll({{10.0}, {5.0}, {0.0}});
  EXPECT_DOUBLE_EQ(all[0][0], 1.0);
  EXPECT_DOUBLE_EQ(all[1][0], 0.5);
  EXPECT_DOUBLE_EQ(all[2][0], 0.0);
}

TEST(ScalerTest, UnscaleWeightsInvertsTransform) {
  // For any x: w_scaled . transform(x) == unscale(w_scaled) . x.
  MaxAbsScaler scaler;
  scaler.Fit({{4.0, 0.5, 3.0}});
  const std::vector<double> w_scaled = {1.0, -2.0, 0.25};
  const std::vector<double> w_raw = scaler.UnscaleWeights(w_scaled);
  const std::vector<double> x = {1.7, 0.3, -2.2};
  const std::vector<double> x_scaled = scaler.Transform(x);
  double scaled_dot = 0.0;
  double raw_dot = 0.0;
  for (size_t f = 0; f < x.size(); ++f) {
    scaled_dot += w_scaled[f] * x_scaled[f];
    raw_dot += w_raw[f] * x[f];
  }
  EXPECT_NEAR(scaled_dot, raw_dot, 1e-12);
}

TEST(ScalerTest, FittedFlag) {
  MaxAbsScaler scaler;
  EXPECT_FALSE(scaler.fitted());
  scaler.Fit({{1.0}});
  EXPECT_TRUE(scaler.fitted());
}

TEST(ScalerDeathTest, TransformBeforeFitAborts) {
  MaxAbsScaler scaler;
  EXPECT_DEATH(scaler.Transform({1.0}), "CHECK failed");
}

TEST(ScalerDeathTest, WidthMismatchAborts) {
  MaxAbsScaler scaler;
  scaler.Fit({{1.0, 2.0}});
  EXPECT_DEATH(scaler.Transform({1.0}), "CHECK failed");
}

}  // namespace
}  // namespace distinct
