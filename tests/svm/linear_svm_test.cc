#include "svm/linear_svm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace distinct {
namespace {

/// Linearly separable 2-D problem: y = +1 iff x0 + x1 > 1.
SvmProblem SeparableProblem(int n, uint64_t seed) {
  Rng rng(seed);
  SvmProblem problem;
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.UniformDouble() * 2.0;
    const double x1 = rng.UniformDouble() * 2.0;
    const double margin = x0 + x1 - 1.0;
    if (std::fabs(margin) < 0.1) {
      --i;  // keep a clean margin band
      continue;
    }
    problem.x.push_back({x0, x1});
    problem.y.push_back(margin > 0 ? 1 : -1);
  }
  return problem;
}

TEST(LinearSvmTest, SeparableProblemIsLearnedPerfectly) {
  const SvmProblem problem = SeparableProblem(400, 11);
  auto model = TrainLinearSvm(problem, SvmParams{});
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->Accuracy(problem), 1.0);
}

TEST(LinearSvmTest, LearnedHyperplaneHasSensibleDirection) {
  const SvmProblem problem = SeparableProblem(400, 13);
  auto model = TrainLinearSvm(problem, SvmParams{});
  ASSERT_TRUE(model.ok());
  // True boundary x0 + x1 = 1: both weights positive, bias negative.
  EXPECT_GT(model->weights()[0], 0.0);
  EXPECT_GT(model->weights()[1], 0.0);
  EXPECT_LT(model->bias(), 0.0);
  // Weight ratio near 1 (the boundary is symmetric in x0, x1).
  EXPECT_NEAR(model->weights()[0] / model->weights()[1], 1.0, 0.3);
}

TEST(LinearSvmTest, DecisionIsAffine) {
  const LinearSvmModel model({2.0, -1.0}, 0.5);
  EXPECT_DOUBLE_EQ(model.Decision({1.0, 1.0}), 1.5);
  EXPECT_EQ(model.Predict({1.0, 1.0}), 1);
  EXPECT_EQ(model.Predict({0.0, 2.0}), -1);
}

TEST(LinearSvmTest, NoisyProblemStillMostlyCorrect) {
  Rng rng(5);
  SvmProblem problem = SeparableProblem(500, 17);
  // Flip 5% of labels.
  for (size_t i = 0; i < problem.y.size(); ++i) {
    if (rng.Bernoulli(0.05)) {
      problem.y[i] = -problem.y[i];
    }
  }
  auto model = TrainLinearSvm(problem, SvmParams{});
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->Accuracy(problem), 0.9);
}

TEST(LinearSvmTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(TrainLinearSvm(SvmProblem{}, SvmParams{}).ok());

  SvmProblem one_class;
  one_class.x = {{1.0}, {2.0}};
  one_class.y = {1, 1};
  EXPECT_FALSE(TrainLinearSvm(one_class, SvmParams{}).ok());

  SvmProblem bad_label;
  bad_label.x = {{1.0}, {2.0}};
  bad_label.y = {1, 0};
  EXPECT_FALSE(TrainLinearSvm(bad_label, SvmParams{}).ok());

  SvmProblem ragged;
  ragged.x = {{1.0}, {2.0, 3.0}};
  ragged.y = {1, -1};
  EXPECT_FALSE(TrainLinearSvm(ragged, SvmParams{}).ok());

  SvmProblem mismatched;
  mismatched.x = {{1.0}};
  mismatched.y = {1, -1};
  EXPECT_FALSE(TrainLinearSvm(mismatched, SvmParams{}).ok());

  SvmProblem fine;
  fine.x = {{1.0}, {-1.0}};
  fine.y = {1, -1};
  SvmParams bad_c;
  bad_c.c = 0.0;
  EXPECT_FALSE(TrainLinearSvm(fine, bad_c).ok());
}

TEST(LinearSvmTest, DeterministicForFixedSeed) {
  const SvmProblem problem = SeparableProblem(200, 23);
  SvmParams params;
  params.seed = 77;
  auto a = TrainLinearSvm(problem, params);
  auto b = TrainLinearSvm(problem, params);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->weights().size(), b->weights().size());
  for (size_t f = 0; f < a->weights().size(); ++f) {
    EXPECT_DOUBLE_EQ(a->weights()[f], b->weights()[f]);
  }
  EXPECT_DOUBLE_EQ(a->bias(), b->bias());
}

TEST(LinearSvmTest, LargerCFitsTrainingDataHarder) {
  Rng rng(5);
  SvmProblem problem = SeparableProblem(300, 31);
  for (size_t i = 0; i < problem.y.size(); ++i) {
    if (rng.Bernoulli(0.1)) {
      problem.y[i] = -problem.y[i];
    }
  }
  SvmParams weak;
  weak.c = 1e-3;
  SvmParams strong;
  strong.c = 100.0;
  auto weak_model = TrainLinearSvm(problem, weak);
  auto strong_model = TrainLinearSvm(problem, strong);
  ASSERT_TRUE(weak_model.ok() && strong_model.ok());
  EXPECT_GE(strong_model->Accuracy(problem) + 1e-9,
            weak_model->Accuracy(problem));
}

TEST(LinearSvmTest, BiasDisabledStaysZero) {
  const SvmProblem problem = SeparableProblem(200, 37);
  SvmParams params;
  params.fit_bias = false;
  auto model = TrainLinearSvm(problem, params);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->bias(), 0.0);
}

TEST(LinearSvmTest, SquaredHingeAlsoLearnsSeparableProblems) {
  const SvmProblem problem = SeparableProblem(400, 51);
  SvmParams params;
  params.loss = SvmLoss::kSquaredHinge;
  auto model = TrainLinearSvm(problem, params);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->Accuracy(problem), 1.0);
}

TEST(LinearSvmTest, SquaredHingeHandlesNoise) {
  Rng rng(5);
  SvmProblem problem = SeparableProblem(500, 53);
  for (size_t i = 0; i < problem.y.size(); ++i) {
    if (rng.Bernoulli(0.08)) {
      problem.y[i] = -problem.y[i];
    }
  }
  SvmParams params;
  params.loss = SvmLoss::kSquaredHinge;
  auto model = TrainLinearSvm(problem, params);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->Accuracy(problem), 0.84);
}

TEST(LinearSvmTest, LossesAgreeOnCleanData) {
  const SvmProblem problem = SeparableProblem(300, 57);
  SvmParams hinge;
  SvmParams squared;
  squared.loss = SvmLoss::kSquaredHinge;
  auto hinge_model = TrainLinearSvm(problem, hinge);
  auto squared_model = TrainLinearSvm(problem, squared);
  ASSERT_TRUE(hinge_model.ok() && squared_model.ok());
  // Same classifications on the training set; weight vectors point the
  // same way (positive cosine).
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t f = 0; f < hinge_model->weights().size(); ++f) {
    dot += hinge_model->weights()[f] * squared_model->weights()[f];
    na += hinge_model->weights()[f] * hinge_model->weights()[f];
    nb += squared_model->weights()[f] * squared_model->weights()[f];
  }
  EXPECT_GT(dot / std::sqrt(na * nb), 0.9);
}

TEST(CrossValidationTest, SeparableProblemScoresHigh) {
  const SvmProblem problem = SeparableProblem(300, 41);
  auto accuracy = CrossValidateAccuracy(problem, SvmParams{}, 5);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(*accuracy, 0.95);
}

TEST(CrossValidationTest, RejectsBadK) {
  const SvmProblem problem = SeparableProblem(50, 43);
  EXPECT_FALSE(CrossValidateAccuracy(problem, SvmParams{}, 1).ok());

  SvmProblem tiny;
  tiny.x = {{0.0}, {1.0}, {2.0}};
  tiny.y = {-1, 1, 1};
  // Class -1 has one example < k = 2.
  EXPECT_FALSE(CrossValidateAccuracy(tiny, SvmParams{}, 2).ok());
}

/// Property sweep: the learned model beats chance across dimensions.
class SvmDimensionTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SvmDimensionTest, BeatsChanceOnRandomHyperplane) {
  const size_t dim = GetParam();
  Rng rng(dim * 1000 + 7);
  std::vector<double> true_w(dim);
  for (double& w : true_w) {
    w = rng.UniformDouble() * 2.0 - 1.0;
  }
  SvmProblem problem;
  for (int i = 0; i < 400; ++i) {
    std::vector<double> x(dim);
    double dot = 0.0;
    for (size_t f = 0; f < dim; ++f) {
      x[f] = rng.UniformDouble() * 2.0 - 1.0;
      dot += true_w[f] * x[f];
    }
    if (std::fabs(dot) < 0.05) {
      --i;
      continue;
    }
    problem.x.push_back(std::move(x));
    problem.y.push_back(dot > 0 ? 1 : -1);
  }
  auto model = TrainLinearSvm(problem, SvmParams{});
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->Accuracy(problem), 0.97);
}

INSTANTIATE_TEST_SUITE_P(Dimensions, SvmDimensionTest,
                         ::testing::Values(1, 2, 5, 18, 40));

}  // namespace
}  // namespace distinct
