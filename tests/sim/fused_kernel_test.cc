#include "sim/fused_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <vector>

#include "../test_util.h"
#include "cluster/agglomerative.h"
#include "common/rng.h"
#include "core/distinct.h"
#include "dblp/generator.h"
#include "dblp/schema.h"
#include "sim/parallel_kernel.h"
#include "sim/profile_arena.h"
#include "sim/profile_store.h"

namespace distinct {
namespace {

// ---------------------------------------------------------------------------
// Naive hash-map reference implementations. Deliberately share no code (and
// no iteration order) with the merge-join kernels: resemblance walks the key
// union of two hash maps, the walks probe one map per direction. Agreement
// is up to floating-point reassociation, hence EXPECT_NEAR.
// ---------------------------------------------------------------------------

double NaiveResemblance(const NeighborProfile& a, const NeighborProfile& b) {
  if (a.empty() || b.empty()) {
    return 0.0;
  }
  std::unordered_map<int32_t, double> fa;
  std::unordered_map<int32_t, double> fb;
  std::set<int32_t> keys;
  for (const ProfileEntry& e : a.entries()) {
    fa[e.tuple] = e.forward;
    keys.insert(e.tuple);
  }
  for (const ProfileEntry& e : b.entries()) {
    fb[e.tuple] = e.forward;
    keys.insert(e.tuple);
  }
  double numerator = 0.0;
  double denominator = 0.0;
  for (const int32_t t : keys) {
    const auto ia = fa.find(t);
    const auto ib = fb.find(t);
    const double pa = ia == fa.end() ? 0.0 : ia->second;
    const double pb = ib == fb.end() ? 0.0 : ib->second;
    numerator += std::min(pa, pb);
    denominator += std::max(pa, pb);
  }
  return denominator > 0.0 ? numerator / denominator : 0.0;
}

double NaiveSymmetricWalk(const NeighborProfile& a, const NeighborProfile& b) {
  std::unordered_map<int32_t, const ProfileEntry*> index;
  for (const ProfileEntry& e : b.entries()) {
    index[e.tuple] = &e;
  }
  double ab = 0.0;
  double ba = 0.0;
  for (const ProfileEntry& e : a.entries()) {
    const auto it = index.find(e.tuple);
    if (it != index.end()) {
      ab += e.forward * it->second->reverse;
      ba += it->second->forward * e.reverse;
    }
  }
  return 0.5 * (ab + ba);
}

/// The clusterer's singleton-pair similarity for a (resem, walk) cell pair
/// — what the mass-bound prune upper-bounds.
double CombinedSimilarity(double resem, double walk, ClusterMeasure measure,
                          CombineRule combine) {
  switch (measure) {
    case ClusterMeasure::kResemblanceOnly:
      return resem;
    case ClusterMeasure::kWalkOnly:
      return walk;
    case ClusterMeasure::kComposite:
      break;
  }
  if (combine == CombineRule::kArithmeticMean) {
    return 0.5 * (resem + walk);
  }
  return std::sqrt(resem * walk);
}

/// Random per-reference profiles over a small shared tuple universe so
/// overlap, disjointness, and empties all occur. profiles[ref][path].
std::vector<std::vector<NeighborProfile>> RandomProfiles(Rng& rng,
                                                         size_t num_refs,
                                                         size_t num_paths) {
  std::vector<std::vector<NeighborProfile>> profiles(num_refs);
  for (size_t r = 0; r < num_refs; ++r) {
    for (size_t p = 0; p < num_paths; ++p) {
      std::vector<ProfileEntry> entries;
      if (!rng.Bernoulli(0.15)) {  // 15%: empty profile
        for (int t = 0; t < 24; ++t) {
          if (!rng.Bernoulli(0.3)) {
            continue;
          }
          // 10%: zero forward (exercises zero-denominator handling).
          const double fwd = rng.Bernoulli(0.1) ? 0.0 : rng.UniformDouble();
          entries.push_back(ProfileEntry{t, fwd, rng.UniformDouble()});
        }
      }
      profiles[r].emplace_back(std::move(entries));
    }
  }
  return profiles;
}

bool ShareAnyTuple(const std::vector<NeighborProfile>& a,
                   const std::vector<NeighborProfile>& b) {
  for (size_t p = 0; p < a.size(); ++p) {
    for (const ProfileEntry& ea : a[p].entries()) {
      for (const ProfileEntry& eb : b[p].entries()) {
        if (ea.tuple == eb.tuple) {
          return true;
        }
      }
    }
  }
  return false;
}

class FusedDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FusedDifferentialTest, MatchesNaiveHashMapReference) {
  Rng rng(GetParam());
  const size_t kRefs = 12;
  const size_t kPaths = 3;
  const auto profiles = RandomProfiles(rng, kRefs, kPaths);
  const ProfileArena arena = ProfileArena::FromProfiles(profiles);
  ASSERT_EQ(arena.num_refs(), kRefs);
  ASSERT_EQ(arena.num_paths(), kPaths);

  for (size_t i = 1; i < kRefs; ++i) {
    for (size_t j = 0; j < i; ++j) {
      const PairFeatures fused = FusedFeatures(arena, i, j);
      ASSERT_EQ(fused.resemblance.size(), kPaths);
      for (size_t p = 0; p < kPaths; ++p) {
        EXPECT_NEAR(fused.resemblance[p],
                    NaiveResemblance(profiles[i][p], profiles[j][p]), 1e-12)
            << "pair (" << i << ", " << j << ") path " << p;
        EXPECT_NEAR(fused.walk[p],
                    NaiveSymmetricWalk(profiles[i][p], profiles[j][p]), 1e-12)
            << "pair (" << i << ", " << j << ") path " << p;
      }
    }
  }
}

TEST_P(FusedDifferentialTest, BitIdenticalToThreePassReference) {
  Rng rng(GetParam() + 1000);
  const size_t kRefs = 10;
  const auto profiles = RandomProfiles(rng, kRefs, /*num_paths=*/3);
  const ProfileArena arena = ProfileArena::FromProfiles(profiles);

  for (size_t i = 1; i < kRefs; ++i) {
    for (size_t j = 0; j < i; ++j) {
      const PairFeatures fused = FusedFeatures(arena, i, j);
      // The production reference path: SetResemblance + both
      // WalkProbability directions per path.
      const PairFeatures reference =
          ComputePairFeatures(profiles[i], profiles[j]);
      ASSERT_EQ(fused.resemblance.size(), reference.resemblance.size());
      for (size_t p = 0; p < fused.resemblance.size(); ++p) {
        // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the guarantee is bit-for-bit.
        EXPECT_EQ(fused.resemblance[p], reference.resemblance[p]);
        EXPECT_EQ(fused.walk[p], reference.walk[p]);
      }
    }
  }
}

TEST_P(FusedDifferentialTest, CandidateSetMatchesBruteForceOverlap) {
  Rng rng(GetParam() + 2000);
  const size_t kRefs = 14;
  const auto profiles = RandomProfiles(rng, kRefs, /*num_paths=*/2);
  const ProfileArena arena = ProfileArena::FromProfiles(profiles);
  const CandidateSet candidates = CandidateSet::Build(arena);
  ASSERT_EQ(candidates.num_refs(), kRefs);

  int64_t expected_count = 0;
  for (size_t i = 1; i < kRefs; ++i) {
    for (size_t j = 0; j < i; ++j) {
      const bool overlap = ShareAnyTuple(profiles[i], profiles[j]);
      EXPECT_EQ(candidates.contains(i, j), overlap)
          << "pair (" << i << ", " << j << ")";
      expected_count += overlap ? 1 : 0;
      if (!overlap) {
        // Skipping a non-candidate is exact: every feature is zero.
        const PairFeatures features = FusedFeatures(arena, i, j);
        for (size_t p = 0; p < features.resemblance.size(); ++p) {
          EXPECT_EQ(features.resemblance[p], 0.0);
          EXPECT_EQ(features.walk[p], 0.0);
        }
      }
    }
  }
  EXPECT_EQ(candidates.count(), expected_count);
}

TEST_P(FusedDifferentialTest, UpperBoundDominatesTrueSimilarity) {
  Rng rng(GetParam() + 3000);
  const size_t kRefs = 10;
  const size_t kPaths = 3;
  const auto profiles = RandomProfiles(rng, kRefs, kPaths);
  const ProfileArena arena = ProfileArena::FromProfiles(profiles);
  // Mixed-sign weights: negative ones must not weaken the bound below the
  // (clamped) true similarity.
  std::vector<double> resem_weights = {0.6, -0.2, 0.4};
  std::vector<double> walk_weights = {0.3, 0.7, -0.1};
  const SimilarityModel model(resem_weights, walk_weights);

  for (const ClusterMeasure measure :
       {ClusterMeasure::kComposite, ClusterMeasure::kResemblanceOnly,
        ClusterMeasure::kWalkOnly}) {
    for (const CombineRule combine :
         {CombineRule::kGeometricMean, CombineRule::kArithmeticMean}) {
      PrunePolicy policy;
      policy.measure = measure;
      policy.combine = combine;
      for (size_t i = 1; i < kRefs; ++i) {
        for (size_t j = 0; j < i; ++j) {
          const PairFeatures features = FusedFeatures(arena, i, j);
          const double actual =
              CombinedSimilarity(model.Resemblance(features),
                                 model.Walk(features), measure, combine);
          const double bound =
              PairSimilarityUpperBound(arena, model, policy, i, j);
          EXPECT_GE(bound, actual - 1e-12)
              << "pair (" << i << ", " << j << ") measure "
              << static_cast<int>(measure) << " combine "
              << static_cast<int>(combine);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedDifferentialTest,
                         ::testing::Values(11, 42, 777, 123456));

// ---------------------------------------------------------------------------
// Hand-built edge cases.
// ---------------------------------------------------------------------------

TEST(FusedKernelEdgeTest, EmptyProfilesYieldZeroFeatures) {
  std::vector<std::vector<NeighborProfile>> profiles(2);
  profiles[0].emplace_back(
      std::vector<ProfileEntry>{{1, 0.5, 0.5}, {2, 0.5, 0.5}});
  profiles[1].emplace_back();  // empty profile on the only path
  const ProfileArena arena = ProfileArena::FromProfiles(profiles);
  EXPECT_EQ(arena.path(0).size(0), 2u);
  EXPECT_EQ(arena.path(0).size(1), 0u);

  const FusedPathFeatures features = FusedMergeJoin(arena.path(0), 1, 0);
  EXPECT_EQ(features.resemblance, 0.0);
  EXPECT_EQ(features.walk, 0.0);
  EXPECT_FALSE(CandidateSet::Build(arena).contains(1, 0));
}

TEST(FusedKernelEdgeTest, ZeroForwardMassGivesZeroDenominator) {
  // Entries exist and tuples overlap, but every forward probability is 0:
  // the resemblance denominator is 0, so resemblance must be 0 (not NaN).
  std::vector<std::vector<NeighborProfile>> profiles(2);
  profiles[0].emplace_back(std::vector<ProfileEntry>{{1, 0.0, 0.4}});
  profiles[1].emplace_back(std::vector<ProfileEntry>{{1, 0.0, 0.7}});
  const ProfileArena arena = ProfileArena::FromProfiles(profiles);
  const FusedPathFeatures features = FusedMergeJoin(arena.path(0), 1, 0);
  EXPECT_EQ(features.resemblance, 0.0);
  EXPECT_EQ(features.walk, 0.0);  // forward factors are 0 in both directions
  // Tuples overlap, so the pair is still a candidate.
  EXPECT_TRUE(CandidateSet::Build(arena).contains(1, 0));
}

TEST(FusedKernelEdgeTest, DisjointTuplesAreNotCandidates) {
  std::vector<std::vector<NeighborProfile>> profiles(3);
  profiles[0].emplace_back(std::vector<ProfileEntry>{{1, 1.0, 1.0}});
  profiles[1].emplace_back(std::vector<ProfileEntry>{{2, 1.0, 1.0}});
  profiles[2].emplace_back(std::vector<ProfileEntry>{{1, 0.5, 0.5}});
  const ProfileArena arena = ProfileArena::FromProfiles(profiles);
  const CandidateSet candidates = CandidateSet::Build(arena);
  EXPECT_FALSE(candidates.contains(1, 0));
  EXPECT_FALSE(candidates.contains(2, 1));
  EXPECT_TRUE(candidates.contains(2, 0));
  EXPECT_EQ(candidates.count(), 1);
}

TEST(FusedKernelEdgeTest, ArenaSlicesAreSortedAndDuplicateFree) {
  // NeighborProfile sorts its entries; the arena must preserve that order
  // (strictly increasing tuples per slice) — the merge-join relies on it.
  std::vector<std::vector<NeighborProfile>> profiles(2);
  profiles[0].emplace_back(std::vector<ProfileEntry>{
      {7, 0.1, 0.1}, {2, 0.2, 0.2}, {5, 0.3, 0.3}});
  profiles[1].emplace_back(std::vector<ProfileEntry>{{9, 0.4, 0.4}, {1, 0.6, 0.6}});
  const ProfileArena arena = ProfileArena::FromProfiles(profiles);
  const ProfileArena::Path& path = arena.path(0);
  for (size_t r = 0; r < arena.num_refs(); ++r) {
    for (size_t e = path.offsets[r] + 1; e < path.offsets[r + 1]; ++e) {
      EXPECT_LT(path.tuples[e - 1], path.tuples[e]);
    }
  }
  EXPECT_EQ(arena.num_entries(), 5u);
  EXPECT_DOUBLE_EQ(path.mass[0], 0.6);
  EXPECT_DOUBLE_EQ(path.forward_max[1], 0.6);
}

// ---------------------------------------------------------------------------
// Engine-level: fused vs reference kernel on a generated mega-name, and the
// prune's contract against exact matrices.
// ---------------------------------------------------------------------------

void ExpectBitIdentical(const PairMatrix& a, const PairMatrix& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      EXPECT_EQ(a.at(i, j), b.at(i, j)) << "cell (" << i << ", " << j << ")";
    }
  }
}

class FusedKernelEngineTest : public ::testing::Test {
 protected:
  FusedKernelEngineTest() {
    GeneratorConfig generator;
    generator.seed = 7;
    generator.num_communities = 12;
    generator.authors_per_community = 15;
    generator.ambiguous = {{"Wei Wang", 4, 60}};
    auto dataset = GenerateDblpDataset(generator);
    DISTINCT_CHECK(dataset.ok());
    dataset_ = std::make_unique<DblpDataset>(*std::move(dataset));

    DistinctConfig config;
    config.supervised = false;
    config.promotions = DblpDefaultPromotions();
    auto engine = Distinct::Create(dataset_->db, DblpReferenceSpec(), config);
    DISTINCT_CHECK(engine.ok());
    engine_ = std::make_unique<Distinct>(*std::move(engine));

    auto refs = engine_->RefsForName("Wei Wang");
    DISTINCT_CHECK(refs.ok());
    refs_ = *std::move(refs);
    DISTINCT_CHECK(refs_.size() >= 50);
  }

  ProfileStore BuildStore(ThreadPool* pool) const {
    return ProfileStore::Build(engine_->propagation_engine(),
                               engine_->paths(),
                               engine_->config().propagation, refs_, pool,
                               /*min_parallel_refs=*/2);
  }

  std::unique_ptr<DblpDataset> dataset_;
  std::unique_ptr<Distinct> engine_;
  std::vector<int32_t> refs_;
};

TEST_F(FusedKernelEngineTest, FusedMatchesReferenceAcrossThreadCounts) {
  const ProfileStore serial_store = BuildStore(nullptr);
  PairKernelOptions reference;
  reference.kernel = PairKernelType::kReference;
  const auto expected =
      ComputePairMatrices(serial_store, engine_->model(), nullptr, reference);

  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    const ProfileStore store = BuildStore(&pool);
    PairKernelOptions fused;
    fused.kernel = PairKernelType::kFused;
    fused.tile_size = 8;
    fused.min_parallel_refs = 2;
    const auto actual =
        ComputePairMatrices(store, engine_->model(), &pool, fused);
    ExpectBitIdentical(actual.first, expected.first);
    ExpectBitIdentical(actual.second, expected.second);
  }
}

TEST_F(FusedKernelEngineTest, EveryKernelIsaMatchesReferenceBitIdentically) {
  // The full engine-scale differential: each ISA (and auto, whatever it
  // resolves to on this host) must reproduce the reference matrices bit for
  // bit, serial and under a pool — the merge-join variants change only how
  // matches are found, never what is accumulated.
  const ProfileStore serial_store = BuildStore(nullptr);
  PairKernelOptions reference;
  reference.kernel = PairKernelType::kReference;
  const auto expected =
      ComputePairMatrices(serial_store, engine_->model(), nullptr, reference);

  ThreadPool pool(4);
  const ProfileStore parallel_store = BuildStore(&pool);
  for (const KernelIsa isa : {KernelIsa::kAuto, KernelIsa::kScalar,
                              KernelIsa::kGallop, KernelIsa::kAvx2}) {
    for (ThreadPool* workers : {static_cast<ThreadPool*>(nullptr), &pool}) {
      const ProfileStore& store = workers ? parallel_store : serial_store;
      PairKernelOptions fused;
      fused.kernel = PairKernelType::kFused;
      fused.tile_size = 8;
      fused.min_parallel_refs = 2;
      fused.isa = isa;
      const auto actual =
          ComputePairMatrices(store, engine_->model(), workers, fused);
      SCOPED_TRACE(std::string("isa=") + KernelIsaName(ResolveKernelIsa(isa)) +
                   (workers ? " pooled" : " serial"));
      ExpectBitIdentical(actual.first, expected.first);
      ExpectBitIdentical(actual.second, expected.second);
    }
  }
}

TEST_F(FusedKernelEngineTest, NonCandidatePairsAreExactlyZeroInReference) {
  const ProfileStore store = BuildStore(nullptr);
  const ProfileArena arena = ProfileArena::FromStore(store);
  const CandidateSet candidates = CandidateSet::Build(arena);
  PairKernelOptions reference;
  reference.kernel = PairKernelType::kReference;
  const auto matrices =
      ComputePairMatrices(store, engine_->model(), nullptr, reference);
  for (size_t i = 1; i < refs_.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (!candidates.contains(i, j)) {
        EXPECT_EQ(matrices.first.at(i, j), 0.0);
        EXPECT_EQ(matrices.second.at(i, j), 0.0);
      }
    }
  }
}

TEST_F(FusedKernelEngineTest, PruningDropsOnlySubThresholdCells) {
  const ProfileStore store = BuildStore(nullptr);
  const auto exact = ComputePairMatrices(store, engine_->model());

  // Two merge floors: the paper's default (where the uniform-weight bound
  // is loose and may prune nothing) and a floor inside the bound's range
  // on this dataset, where the prune deterministically fires.
  int64_t total_dropped = 0;
  for (const double min_sim : {engine_->config().min_sim, 0.25}) {
    PairKernelOptions pruned_options;
    pruned_options.pruning = true;
    pruned_options.prune_min_sim = min_sim;
    const auto pruned =
        ComputePairMatrices(store, engine_->model(), nullptr, pruned_options);

    for (size_t i = 1; i < refs_.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (pruned.first.at(i, j) == exact.first.at(i, j) &&
            pruned.second.at(i, j) == exact.second.at(i, j)) {
          continue;
        }
        ++total_dropped;
        // A pruned cell reads 0.0, and its true combined similarity is
        // below the merge floor — the clusterer could never have merged
        // on it.
        EXPECT_EQ(pruned.first.at(i, j), 0.0);
        EXPECT_EQ(pruned.second.at(i, j), 0.0);
        const double actual = CombinedSimilarity(
            exact.first.at(i, j), exact.second.at(i, j),
            ClusterMeasure::kComposite, CombineRule::kGeometricMean);
        EXPECT_LT(actual, min_sim) << "cell (" << i << ", " << j << ")";
      }
    }

    // Final clusterings agree: every merge decision happens at or above
    // min_sim, where the matrices are identical.
    AgglomerativeOptions cluster = engine_->cluster_options();
    cluster.min_sim = min_sim;
    const ClusteringResult a =
        ClusterReferences(exact.first, exact.second, cluster);
    const ClusteringResult b =
        ClusterReferences(pruned.first, pruned.second, cluster);
    EXPECT_EQ(a.num_clusters, b.num_clusters);
    EXPECT_EQ(a.assignment, b.assignment);
  }
  // The prune must actually fire somewhere (deterministic dataset, seed 7).
  EXPECT_GT(total_dropped, 0);
}

TEST_F(FusedKernelEngineTest, EngineResolveAgreesAcrossKernelsAndPruning) {
  auto baseline = engine_->ResolveRefs(refs_);
  ASSERT_TRUE(baseline.ok());

  DistinctConfig config = engine_->config();
  config.kernel = PairKernelType::kReference;
  config.kernel_pruning = false;
  auto reference_engine =
      Distinct::Create(dataset_->db, DblpReferenceSpec(), config);
  ASSERT_TRUE(reference_engine.ok());
  auto reference = reference_engine->ResolveRefs(refs_);
  ASSERT_TRUE(reference.ok());

  EXPECT_EQ(baseline->num_clusters, reference->num_clusters);
  EXPECT_EQ(baseline->assignment, reference->assignment);
}

TEST(FusedKernelMiniTest, EmptyAndSingletonStores) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.supervised = false;
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());
  for (const std::vector<int32_t>& refs :
       {std::vector<int32_t>{}, std::vector<int32_t>{0}}) {
    const ProfileStore store = ProfileStore::Build(
        engine->propagation_engine(), engine->paths(),
        engine->config().propagation, refs, /*pool=*/nullptr);
    const ProfileArena arena = ProfileArena::FromStore(store);
    EXPECT_EQ(arena.num_refs(), refs.size());
    const CandidateSet candidates = CandidateSet::Build(arena);
    EXPECT_EQ(candidates.count(), 0);
    PairKernelOptions fused;
    fused.kernel = PairKernelType::kFused;
    const auto matrices =
        ComputePairMatrices(store, engine->model(), nullptr, fused);
    EXPECT_EQ(matrices.first.size(), refs.size());
  }
}

}  // namespace
}  // namespace distinct
