#include "sim/similarity_model.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

PairFeatures MakeFeatures(std::vector<double> resem,
                          std::vector<double> walk) {
  PairFeatures features;
  features.resemblance = std::move(resem);
  features.walk = std::move(walk);
  return features;
}

TEST(SimilarityModelTest, UniformWeights) {
  const SimilarityModel model = SimilarityModel::Uniform(4);
  EXPECT_EQ(model.num_paths(), 4u);
  for (const double w : model.resem_weights()) {
    EXPECT_DOUBLE_EQ(w, 0.25);
  }
  const PairFeatures features =
      MakeFeatures({1.0, 1.0, 0.0, 0.0}, {0.4, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(model.Resemblance(features), 0.5);
  EXPECT_DOUBLE_EQ(model.Walk(features), 0.1);
}

TEST(SimilarityModelTest, WeightedCombination) {
  const SimilarityModel model({0.8, 0.2}, {0.5, 0.5});
  const PairFeatures features = MakeFeatures({0.5, 1.0}, {0.1, 0.3});
  EXPECT_NEAR(model.Resemblance(features), 0.8 * 0.5 + 0.2 * 1.0, 1e-12);
  EXPECT_NEAR(model.Walk(features), 0.5 * 0.1 + 0.5 * 0.3, 1e-12);
}

TEST(SimilarityModelTest, NegativeTotalsClampToZero) {
  const SimilarityModel model({-1.0}, {-1.0});
  const PairFeatures features = MakeFeatures({0.7}, {0.2});
  EXPECT_DOUBLE_EQ(model.Resemblance(features), 0.0);
  EXPECT_DOUBLE_EQ(model.Walk(features), 0.0);
}

TEST(SimilarityModelTest, ClampAndNormalizeZeroesNegativesAndSumsToOne) {
  SimilarityModel model({2.0, -1.0, 2.0}, {0.0, 0.0, 5.0});
  model.ClampAndNormalize();
  EXPECT_DOUBLE_EQ(model.resem_weights()[0], 0.5);
  EXPECT_DOUBLE_EQ(model.resem_weights()[1], 0.0);
  EXPECT_DOUBLE_EQ(model.resem_weights()[2], 0.5);
  EXPECT_DOUBLE_EQ(model.walk_weights()[2], 1.0);
}

TEST(SimilarityModelTest, AllNegativeFallsBackToUniform) {
  SimilarityModel model({-1.0, -2.0}, {-0.5, -0.5});
  model.ClampAndNormalize();
  EXPECT_DOUBLE_EQ(model.resem_weights()[0], 0.5);
  EXPECT_DOUBLE_EQ(model.resem_weights()[1], 0.5);
  EXPECT_DOUBLE_EQ(model.walk_weights()[0], 0.5);
}

TEST(SimilarityModelTest, DebugStringShowsPathNames) {
  const SimilarityModel model({0.9, 0.1}, {0.5, 0.5},
                              {"coauthor-path", "venue-path"});
  const std::string debug = model.DebugString();
  EXPECT_NE(debug.find("coauthor-path"), std::string::npos);
  EXPECT_NE(debug.find("venue-path"), std::string::npos);
  // Sorted by resemblance weight: coauthor first.
  EXPECT_LT(debug.find("coauthor-path"), debug.find("venue-path"));
}

TEST(SimilarityModelDeathTest, MismatchedWidthsAbort) {
  EXPECT_DEATH(SimilarityModel({0.5}, {0.5, 0.5}), "CHECK failed");
}

}  // namespace
}  // namespace distinct
