#include "sim/walk_probability.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace distinct {
namespace {

NeighborProfile Profile(std::vector<ProfileEntry> entries) {
  return NeighborProfile(std::move(entries));
}

TEST(WalkProbabilityTest, HandComputed) {
  // a: {t1: fwd 0.5}, b: {t1: rev 1/6}. Walk(a->b) = 0.5 * 1/6.
  const NeighborProfile a = Profile({{1, 0.5, 0.25}});
  const NeighborProfile b = Profile({{1, 1.0 / 3, 1.0 / 6}});
  EXPECT_NEAR(WalkProbability(a, b), 0.5 / 6.0, 1e-12);
  EXPECT_NEAR(WalkProbability(b, a), (1.0 / 3) * 0.25, 1e-12);
  EXPECT_NEAR(SymmetricWalkProbability(a, b),
              0.5 * (0.5 / 6.0 + 0.25 / 3.0), 1e-12);
}

TEST(WalkProbabilityTest, DisjointProfilesWalkZero) {
  const NeighborProfile a = Profile({{1, 1.0, 1.0}});
  const NeighborProfile b = Profile({{2, 1.0, 1.0}});
  EXPECT_DOUBLE_EQ(WalkProbability(a, b), 0.0);
  EXPECT_DOUBLE_EQ(SymmetricWalkProbability(a, b), 0.0);
}

TEST(WalkProbabilityTest, EmptyProfiles) {
  const NeighborProfile a = Profile({{1, 1.0, 1.0}});
  EXPECT_DOUBLE_EQ(WalkProbability(a, NeighborProfile()), 0.0);
  EXPECT_DOUBLE_EQ(WalkProbability(NeighborProfile(), a), 0.0);
}

TEST(WalkProbabilityTest, MultipleSharedTuplesSum) {
  const NeighborProfile a = Profile({{1, 0.4, 0.2}, {2, 0.6, 0.3}});
  const NeighborProfile b = Profile({{1, 0.5, 0.1}, {2, 0.5, 0.25}});
  EXPECT_NEAR(WalkProbability(a, b), 0.4 * 0.1 + 0.6 * 0.25, 1e-12);
}

TEST(WalkProbabilityTest, DirectedWalkIsNotSymmetricButCombinedIs) {
  const NeighborProfile a = Profile({{1, 0.9, 0.1}});
  const NeighborProfile b = Profile({{1, 0.2, 0.8}});
  EXPECT_NE(WalkProbability(a, b), WalkProbability(b, a));
  EXPECT_DOUBLE_EQ(SymmetricWalkProbability(a, b),
                   SymmetricWalkProbability(b, a));
}

/// Property sweep: symmetric walk probability is symmetric, non-negative,
/// and bounded by 1 for probability-valued profiles.
class WalkPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalkPropertyTest, SymmetricNonNegativeBounded) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<ProfileEntry> ea;
    std::vector<ProfileEntry> eb;
    for (int t = 0; t < 20; ++t) {
      if (rng.Bernoulli(0.5)) {
        ea.push_back(
            ProfileEntry{t, rng.UniformDouble(), rng.UniformDouble()});
      }
      if (rng.Bernoulli(0.5)) {
        eb.push_back(
            ProfileEntry{t, rng.UniformDouble(), rng.UniformDouble()});
      }
    }
    const NeighborProfile a(std::move(ea));
    const NeighborProfile b(std::move(eb));
    const double sym = SymmetricWalkProbability(a, b);
    EXPECT_DOUBLE_EQ(sym, SymmetricWalkProbability(b, a));
    EXPECT_GE(sym, 0.0);
    // Each direction is at most Σ fwd * rev <= Σ fwd <= n; with fwd/rev in
    // [0,1] and <= 20 tuples the bound 20 is loose but structural.
    EXPECT_LE(sym, 20.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkPropertyTest,
                         ::testing::Values(3, 17, 256, 9001));

/// Regression: SymmetricWalkProbability is now a single merge with two
/// accumulators; it must stay bit-identical to the original two-pass
/// formula 0.5 * (Walk(a, b) + Walk(b, a)).
class WalkOnePassTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalkOnePassTest, OnePassEqualsTwoPassBitForBit) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<ProfileEntry> ea;
    std::vector<ProfileEntry> eb;
    for (int t = 0; t < 30; ++t) {
      if (rng.Bernoulli(0.4)) {
        ea.push_back(
            ProfileEntry{t, rng.UniformDouble(), rng.UniformDouble()});
      }
      if (rng.Bernoulli(0.4)) {
        eb.push_back(
            ProfileEntry{t, rng.UniformDouble(), rng.UniformDouble()});
      }
    }
    const NeighborProfile a(std::move(ea));
    const NeighborProfile b(std::move(eb));
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the accumulators visit matches in
    // the same order as each directed pass, so equality is exact.
    EXPECT_EQ(SymmetricWalkProbability(a, b),
              0.5 * (WalkProbability(a, b) + WalkProbability(b, a)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkOnePassTest,
                         ::testing::Values(5, 21, 4242));

}  // namespace
}  // namespace distinct
