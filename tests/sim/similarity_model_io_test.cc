#include "sim/similarity_model_io.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace distinct {
namespace {

SimilarityModel MakeModel() {
  return SimilarityModel({0.5, 0.25, 0.25}, {0.9, 0.05, 0.05},
                         {"Publish -paper-> Publications",
                          "a path with spaces in it",
                          "another -> path"});
}

TEST(SimilarityModelIoTest, RoundTripExact) {
  const SimilarityModel model = MakeModel();
  auto parsed = ParseSimilarityModel(SerializeSimilarityModel(model));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_paths(), 3u);
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_DOUBLE_EQ(parsed->resem_weights()[p], model.resem_weights()[p]);
    EXPECT_DOUBLE_EQ(parsed->walk_weights()[p], model.walk_weights()[p]);
    EXPECT_EQ(parsed->path_names()[p], model.path_names()[p]);
  }
}

TEST(SimilarityModelIoTest, TinyWeightsSurvive) {
  const SimilarityModel model({1e-300, 0.1}, {2.5e-17, 1.0},
                              {"p0", "p1"});
  auto parsed = ParseSimilarityModel(SerializeSimilarityModel(model));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->resem_weights()[0], 1e-300);
  EXPECT_DOUBLE_EQ(parsed->walk_weights()[0], 2.5e-17);
}

TEST(SimilarityModelIoTest, UnnamedModelGetsPlaceholders) {
  const SimilarityModel model({0.5, 0.5}, {0.5, 0.5});
  auto parsed = ParseSimilarityModel(SerializeSimilarityModel(model));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->path_names()[1], "path 1");
}

TEST(SimilarityModelIoTest, CommentsIgnored) {
  std::string text = SerializeSimilarityModel(MakeModel());
  text = "# produced by a test\n" + text + "# trailing comment\n";
  EXPECT_TRUE(ParseSimilarityModel(text).ok());
}

TEST(SimilarityModelIoTest, RejectsCorruption) {
  EXPECT_FALSE(ParseSimilarityModel("").ok());
  EXPECT_FALSE(ParseSimilarityModel("bogus header\npaths 0\n").ok());
  EXPECT_FALSE(
      ParseSimilarityModel("distinct-similarity-model v1\npaths x\n").ok());
  EXPECT_FALSE(
      ParseSimilarityModel("distinct-similarity-model v1\npaths 2\n"
                           "0.5 0.5\tonly one\n")
          .ok());
  // Missing tab separator.
  EXPECT_FALSE(
      ParseSimilarityModel("distinct-similarity-model v1\npaths 1\n"
                           "0.5 0.5 name\n")
          .ok());
  // Malformed weight.
  EXPECT_FALSE(
      ParseSimilarityModel("distinct-similarity-model v1\npaths 1\n"
                           "zz 0.5\tname\n")
          .ok());
  // One weight only.
  EXPECT_FALSE(
      ParseSimilarityModel("distinct-similarity-model v1\npaths 1\n"
                           "0.5\tname\n")
          .ok());
}

TEST(SimilarityModelIoTest, FileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/similarity_model_test.txt";
  ASSERT_TRUE(SaveSimilarityModel(MakeModel(), path).ok());
  auto loaded = LoadSimilarityModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_paths(), 3u);
  std::remove(path.c_str());
}

TEST(SimilarityModelIoTest, MissingFile) {
  EXPECT_EQ(LoadSimilarityModel("/no/such/model").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace distinct
