#include "sim/resemblance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace distinct {
namespace {

NeighborProfile Profile(std::vector<ProfileEntry> entries) {
  return NeighborProfile(std::move(entries));
}

TEST(SetResemblanceTest, IdenticalProfilesScoreOne) {
  const NeighborProfile p =
      Profile({{1, 0.5, 0.1}, {4, 0.3, 0.1}, {9, 0.2, 0.1}});
  EXPECT_DOUBLE_EQ(SetResemblance(p, p), 1.0);
}

TEST(SetResemblanceTest, DisjointProfilesScoreZero) {
  const NeighborProfile a = Profile({{1, 0.5, 0.0}, {2, 0.5, 0.0}});
  const NeighborProfile b = Profile({{3, 0.5, 0.0}, {4, 0.5, 0.0}});
  EXPECT_DOUBLE_EQ(SetResemblance(a, b), 0.0);
}

TEST(SetResemblanceTest, EmptyProfileScoresZero) {
  const NeighborProfile a = Profile({{1, 1.0, 0.0}});
  EXPECT_DOUBLE_EQ(SetResemblance(a, NeighborProfile()), 0.0);
  EXPECT_DOUBLE_EQ(SetResemblance(NeighborProfile(), a), 0.0);
  EXPECT_DOUBLE_EQ(SetResemblance(NeighborProfile(), NeighborProfile()),
                   0.0);
}

TEST(SetResemblanceTest, HandComputedPartialOverlap) {
  // a = {1: 0.5}, b = {1: 1/3, 2: 1/3}.
  // numerator = min(0.5, 1/3) = 1/3.
  // denominator = max(0.5, 1/3) + 1/3 = 5/6.
  const NeighborProfile a = Profile({{1, 0.5, 0.0}});
  const NeighborProfile b = Profile({{1, 1.0 / 3, 0.0}, {2, 1.0 / 3, 0.0}});
  EXPECT_NEAR(SetResemblance(a, b), (1.0 / 3) / (5.0 / 6), 1e-12);
}

TEST(SetResemblanceTest, WeightsMatterNotJustMembership) {
  const NeighborProfile a = Profile({{1, 0.9, 0.0}, {2, 0.1, 0.0}});
  const NeighborProfile b1 = Profile({{1, 0.9, 0.0}, {2, 0.1, 0.0}});
  const NeighborProfile b2 = Profile({{1, 0.1, 0.0}, {2, 0.9, 0.0}});
  EXPECT_GT(SetResemblance(a, b1), SetResemblance(a, b2));
}

/// Property sweep over random profiles: symmetry, range, and identity.
class ResemblancePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  NeighborProfile RandomProfile(Rng& rng, int max_tuples) {
    std::vector<ProfileEntry> entries;
    const int n = static_cast<int>(rng.UniformInt(0, max_tuples));
    for (int t = 0; t < n; ++t) {
      if (rng.Bernoulli(0.6)) {
        entries.push_back(ProfileEntry{t, rng.UniformDouble() + 1e-9,
                                       rng.UniformDouble()});
      }
    }
    return NeighborProfile(std::move(entries));
  }
};

TEST_P(ResemblancePropertyTest, SymmetricAndBounded) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const NeighborProfile a = RandomProfile(rng, 30);
    const NeighborProfile b = RandomProfile(rng, 30);
    const double ab = SetResemblance(a, b);
    const double ba = SetResemblance(b, a);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
}

TEST_P(ResemblancePropertyTest, SelfSimilarityIsOne) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 100; ++trial) {
    const NeighborProfile a = RandomProfile(rng, 30);
    if (!a.empty()) {
      EXPECT_DOUBLE_EQ(SetResemblance(a, a), 1.0);
    }
  }
}

TEST_P(ResemblancePropertyTest, SubsetScoresLessThanEqualSets) {
  Rng rng(GetParam() ^ 0x123456);
  for (int trial = 0; trial < 100; ++trial) {
    NeighborProfile a = RandomProfile(rng, 30);
    if (a.size() < 2) continue;
    // b = a with one entry dropped: resemblance must be < 1.
    std::vector<ProfileEntry> entries = a.entries();
    entries.pop_back();
    const NeighborProfile b(std::move(entries));
    EXPECT_LT(SetResemblance(a, b), 1.0);
    EXPECT_GT(SetResemblance(a, b), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResemblancePropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace distinct
