#include "sim/feature_vector.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "sim/resemblance.h"

namespace distinct {
namespace {

using testing_util::kWeiWangRef0;
using testing_util::kWeiWangRef1;
using testing_util::kWeiWangRef2;

class FeatureVectorTest : public ::testing::Test {
 protected:
  FeatureVectorTest() : db_(testing_util::MakeMiniDblp()) {
    auto graph = SchemaGraph::Build(db_);
    schema_ = std::make_unique<SchemaGraph>(*std::move(graph));
    auto link = LinkGraph::Build(*schema_);
    link_ = std::make_unique<LinkGraph>(*std::move(link));
    engine_ = std::make_unique<PropagationEngine>(*link_);

    PathEnumerationOptions options;
    options.max_length = 3;
    paths_ = EnumerateJoinPaths(*schema_, *db_.TableId(kPublishTable),
                                options);
  }

  Database db_;
  std::unique_ptr<SchemaGraph> schema_;
  std::unique_ptr<LinkGraph> link_;
  std::unique_ptr<PropagationEngine> engine_;
  std::vector<JoinPath> paths_;
};

TEST_F(FeatureVectorTest, FeatureWidthMatchesPathCount) {
  FeatureExtractor extractor(*engine_, paths_);
  const PairFeatures features =
      extractor.Compute(kWeiWangRef0, kWeiWangRef1);
  EXPECT_EQ(features.resemblance.size(), paths_.size());
  EXPECT_EQ(features.walk.size(), paths_.size());
}

TEST_F(FeatureVectorTest, FeaturesMatchDirectComputation) {
  FeatureExtractor extractor(*engine_, paths_);
  const PairFeatures features =
      extractor.Compute(kWeiWangRef0, kWeiWangRef1);
  for (size_t p = 0; p < paths_.size(); ++p) {
    const NeighborProfile a = engine_->Compute(paths_[p], kWeiWangRef0);
    const NeighborProfile b = engine_->Compute(paths_[p], kWeiWangRef1);
    EXPECT_DOUBLE_EQ(features.resemblance[p], SetResemblance(a, b));
  }
}

TEST_F(FeatureVectorTest, CacheGrowsOncePerReference) {
  FeatureExtractor extractor(*engine_, paths_);
  EXPECT_EQ(extractor.cache_size(), 0u);
  extractor.Compute(kWeiWangRef0, kWeiWangRef1);
  EXPECT_EQ(extractor.cache_size(), 2u);
  extractor.Compute(kWeiWangRef0, kWeiWangRef2);
  EXPECT_EQ(extractor.cache_size(), 3u);
  extractor.Compute(kWeiWangRef1, kWeiWangRef2);
  EXPECT_EQ(extractor.cache_size(), 3u);  // everything already cached
}

TEST_F(FeatureVectorTest, ClearCacheEmptiesIt) {
  FeatureExtractor extractor(*engine_, paths_);
  extractor.Compute(kWeiWangRef0, kWeiWangRef1);
  extractor.ClearCache();
  EXPECT_EQ(extractor.cache_size(), 0u);
  // Recomputation still works.
  const PairFeatures features =
      extractor.Compute(kWeiWangRef0, kWeiWangRef1);
  EXPECT_EQ(features.resemblance.size(), paths_.size());
}

TEST_F(FeatureVectorTest, SymmetricPairs) {
  FeatureExtractor extractor(*engine_, paths_);
  const PairFeatures ab = extractor.Compute(kWeiWangRef0, kWeiWangRef1);
  const PairFeatures ba = extractor.Compute(kWeiWangRef1, kWeiWangRef0);
  for (size_t p = 0; p < paths_.size(); ++p) {
    EXPECT_DOUBLE_EQ(ab.resemblance[p], ba.resemblance[p]);
    EXPECT_DOUBLE_EQ(ab.walk[p], ba.walk[p]);
  }
}

TEST_F(FeatureVectorTest, CoauthorFeatureHandValue) {
  // Refs 0 and 1 share coauthor Jiong Yang:
  // profiles {JY: 1/2} and {HW: 1/3, JY: 1/3} -> resemblance 0.4.
  FeatureExtractor extractor(*engine_, paths_);
  size_t coauthor_path = paths_.size();
  for (size_t p = 0; p < paths_.size(); ++p) {
    if (paths_[p].Describe(*schema_) ==
        "Publish -paper_id-> Publications <-paper_id- Publish "
        "-author_id-> Authors") {
      coauthor_path = p;
    }
  }
  ASSERT_LT(coauthor_path, paths_.size());
  const PairFeatures features =
      extractor.Compute(kWeiWangRef0, kWeiWangRef1);
  EXPECT_NEAR(features.resemblance[coauthor_path], 0.4, 1e-12);
  // Walk: 1/2 * 1/6 each direction -> symmetric 1/12.
  EXPECT_NEAR(features.walk[coauthor_path], 1.0 / 12.0, 1e-12);
}

}  // namespace
}  // namespace distinct
