// Differential and property tests for the merge-join ISA family
// (sim/intersect.h): every variant must return bit-identical features to
// the scalar merge — whose accumulation order is itself pinned against a
// naive hash-map reference — over empty, singleton, fully-overlapping,
// duplicate-tuple, skewed, and block-tail inputs, plus the dispatch shim's
// resolution rules and the two candidate-marking machines' bit equality.

#include "sim/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sim/fused_kernel.h"
#include "sim/profile_arena.h"

namespace distinct {
namespace {

// ---------------------------------------------------------------------------
// Naive reference: hash maps, no shared iteration order with any variant.
// ---------------------------------------------------------------------------

FusedPathFeatures NaiveFeatures(const NeighborProfile& a,
                                const NeighborProfile& b) {
  FusedPathFeatures features;
  if (a.empty() || b.empty()) {
    return features;
  }
  std::unordered_map<int32_t, const ProfileEntry*> index;
  for (const ProfileEntry& e : b.entries()) {
    index[e.tuple] = &e;
  }
  double numerator = 0.0;
  double denominator = 0.0;
  double ab = 0.0;
  double ba = 0.0;
  for (const ProfileEntry& e : a.entries()) {
    const auto it = index.find(e.tuple);
    if (it == index.end()) {
      denominator += e.forward;
      continue;
    }
    numerator += std::min(e.forward, it->second->forward);
    denominator += std::max(e.forward, it->second->forward);
    ab += e.forward * it->second->reverse;
    ba += it->second->forward * e.reverse;
  }
  std::unordered_map<int32_t, char> in_a;
  for (const ProfileEntry& e : a.entries()) {
    in_a[e.tuple] = 1;
  }
  for (const ProfileEntry& e : b.entries()) {
    if (in_a.find(e.tuple) == in_a.end()) {
      denominator += e.forward;
    }
  }
  if (denominator > 0.0) {
    features.resemblance = numerator / denominator;
  }
  features.walk = 0.5 * (ab + ba);
  return features;
}

/// Builds a one-path, two-reference arena from two tuple lists; forwards
/// and reverses are deterministic functions of the tuple so any divergence
/// reproduces.
ProfileArena TwoSliceArena(const std::vector<int32_t>& a,
                           const std::vector<int32_t>& b,
                           std::vector<std::vector<NeighborProfile>>* raw) {
  auto entries_of = [](const std::vector<int32_t>& tuples) {
    std::vector<ProfileEntry> entries;
    entries.reserve(tuples.size());
    for (const int32_t t : tuples) {
      const double fwd = 0.05 + 0.9 * std::fmod(static_cast<double>(t) * 0.37,
                                                1.0);
      const double rev = 0.05 + 0.9 * std::fmod(static_cast<double>(t) * 0.71,
                                                1.0);
      entries.push_back(ProfileEntry{t, fwd, rev});
    }
    return entries;
  };
  raw->clear();
  raw->resize(2);
  (*raw)[0].emplace_back(entries_of(a));
  (*raw)[1].emplace_back(entries_of(b));
  return ProfileArena::FromProfiles(*raw);
}

/// Every variant against the scalar contract (EXPECT_EQ — bit identity)
/// and the scalar against the naive reference (EXPECT_NEAR — independent
/// computation), both pair orders.
void ExpectAllVariantsAgree(const std::vector<int32_t>& a,
                            const std::vector<int32_t>& b) {
  std::vector<std::vector<NeighborProfile>> raw;
  const ProfileArena arena = TwoSliceArena(a, b, &raw);
  const ProfileArena::Path& path = arena.path(0);
  for (const auto& [i, j] : {std::pair<size_t, size_t>{1, 0},
                             std::pair<size_t, size_t>{0, 1}}) {
    const FusedPathFeatures scalar = FusedMergeJoin(path, i, j);
    const FusedPathFeatures gallop = FusedMergeJoinGallop(path, i, j);
    const FusedPathFeatures avx2 = FusedMergeJoinAvx2(path, i, j);
    EXPECT_EQ(scalar.resemblance, gallop.resemblance);
    EXPECT_EQ(scalar.walk, gallop.walk);
    EXPECT_EQ(scalar.resemblance, avx2.resemblance);
    EXPECT_EQ(scalar.walk, avx2.walk);
    const FusedPathFeatures naive = NaiveFeatures(raw[i][0], raw[j][0]);
    EXPECT_NEAR(scalar.resemblance, naive.resemblance, 1e-12);
    EXPECT_NEAR(scalar.walk, naive.walk, 1e-12);
  }
}

std::vector<int32_t> Iota(int32_t begin, int32_t count, int32_t step = 1) {
  std::vector<int32_t> tuples;
  tuples.reserve(static_cast<size_t>(count));
  for (int32_t k = 0; k < count; ++k) {
    tuples.push_back(begin + k * step);
  }
  return tuples;
}

// ---------------------------------------------------------------------------
// Dispatch shim.
// ---------------------------------------------------------------------------

TEST(KernelIsaTest, ParseRoundTripsEveryName) {
  for (const KernelIsa isa : {KernelIsa::kAuto, KernelIsa::kScalar,
                              KernelIsa::kGallop, KernelIsa::kAvx2}) {
    KernelIsa parsed = KernelIsa::kScalar;
    ASSERT_TRUE(ParseKernelIsa(KernelIsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  KernelIsa parsed = KernelIsa::kGallop;
  EXPECT_FALSE(ParseKernelIsa("neon", &parsed));
  EXPECT_FALSE(ParseKernelIsa("", &parsed));
  EXPECT_FALSE(ParseKernelIsa("AVX2", &parsed));
  EXPECT_EQ(parsed, KernelIsa::kGallop);  // rejected input leaves out alone
}

TEST(KernelIsaTest, ResolveNeverReturnsAutoAndRespectsSupport) {
  EXPECT_EQ(ResolveKernelIsa(KernelIsa::kScalar), KernelIsa::kScalar);
  EXPECT_EQ(ResolveKernelIsa(KernelIsa::kGallop), KernelIsa::kGallop);
  // auto: the fastest supported; an explicit avx2 request degrades to
  // scalar (not gallop) when the host or build lacks it.
  if (KernelIsaAvx2Available()) {
    EXPECT_EQ(ResolveKernelIsa(KernelIsa::kAuto), KernelIsa::kAvx2);
    EXPECT_EQ(ResolveKernelIsa(KernelIsa::kAvx2), KernelIsa::kAvx2);
  } else {
    EXPECT_EQ(ResolveKernelIsa(KernelIsa::kAuto), KernelIsa::kGallop);
    EXPECT_EQ(ResolveKernelIsa(KernelIsa::kAvx2), KernelIsa::kScalar);
  }
}

TEST(KernelIsaTest, DispatchTableMatchesVariants) {
  EXPECT_EQ(MergeJoinForIsa(KernelIsa::kScalar), &FusedMergeJoin);
  EXPECT_EQ(MergeJoinForIsa(KernelIsa::kGallop), &FusedMergeJoinGallop);
  EXPECT_EQ(MergeJoinForIsa(KernelIsa::kAvx2), &FusedMergeJoinAvx2);
}

// ---------------------------------------------------------------------------
// Hand-built slice shapes.
// ---------------------------------------------------------------------------

TEST(IntersectEdgeTest, EmptyAndSingletonSlices) {
  ExpectAllVariantsAgree({}, {});
  ExpectAllVariantsAgree({}, {5});
  ExpectAllVariantsAgree({3}, {});
  ExpectAllVariantsAgree({7}, {7});    // singleton match
  ExpectAllVariantsAgree({7}, {9});    // singleton mismatch
  ExpectAllVariantsAgree({}, Iota(0, 100));
  ExpectAllVariantsAgree({50}, Iota(0, 100));  // singleton inside a run
}

TEST(IntersectEdgeTest, FullyOverlappingAndDuplicateTupleSets) {
  // Identical tuple sets: union == intersection, every element matches.
  ExpectAllVariantsAgree(Iota(0, 40), Iota(0, 40));
  ExpectAllVariantsAgree(Iota(10, 7, 3), Iota(10, 7, 3));
  // One side duplicated inside the other: proper containment.
  ExpectAllVariantsAgree(Iota(0, 100), Iota(0, 100, 5));
}

TEST(IntersectEdgeTest, DisjointRunsBothOrders) {
  // All of a below all of b, then interleaved blocks.
  ExpectAllVariantsAgree(Iota(0, 30), Iota(100, 30));
  ExpectAllVariantsAgree(Iota(0, 64, 2), Iota(1, 64, 2));  // perfect zipper
}

TEST(IntersectEdgeTest, BlockTailLengthsZeroThroughSixteen) {
  // Skewed pairs whose long-side runs end 0..16 past an 8-tuple block
  // boundary — the AVX2 variant's in-block mask, block-exit, and scalar
  // tail seams, and the gallop probe's run-end landing spots.
  for (int32_t tail = 0; tail <= 16; ++tail) {
    const int32_t long_len = 32 + tail;
    std::vector<int32_t> long_side = Iota(0, long_len);
    // Short side: one match inside the run, one tuple past the end.
    ExpectAllVariantsAgree(long_side, {long_len / 2, long_len + 8});
    // No match at all, probe runs off the slice end.
    ExpectAllVariantsAgree(long_side, {long_len + 1, long_len + 2});
  }
}

TEST(IntersectEdgeTest, ZeroForwardProbabilitiesKeepDenominatorGuard) {
  // All-zero forwards: denominator 0 -> resemblance exactly 0 per the
  // SetResemblance guard, in every variant.
  std::vector<std::vector<NeighborProfile>> raw(2);
  raw[0].emplace_back(
      std::vector<ProfileEntry>{{1, 0.0, 0.4}, {2, 0.0, 0.6}});
  raw[1].emplace_back(
      std::vector<ProfileEntry>{{1, 0.0, 0.9}, {3, 0.0, 0.1}});
  const ProfileArena arena = ProfileArena::FromProfiles(raw);
  for (const auto join : {&FusedMergeJoin, &FusedMergeJoinGallop,
                          &FusedMergeJoinAvx2}) {
    const FusedPathFeatures features = join(arena.path(0), 1, 0);
    EXPECT_EQ(features.resemblance, 0.0);
    // Both directed walks multiply by a forward probability, so they are
    // exactly 0 too — no NaN/Inf leaks from the 0/0 resemblance case.
    EXPECT_EQ(features.walk, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Randomized differential sweep.
// ---------------------------------------------------------------------------

class IntersectDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(IntersectDifferentialTest, RandomSlicesAllLengthMixes) {
  Rng rng(GetParam());
  // Length classes chosen to cross the 8x gallop/AVX2 skew trigger in both
  // directions, plus balanced pairs that stay on the scalar path.
  const int kLengths[] = {0, 1, 2, 7, 8, 9, 16, 40, 200};
  for (const int len_a : kLengths) {
    for (const int len_b : kLengths) {
      std::vector<int32_t> a;
      std::vector<int32_t> b;
      int32_t t = 0;
      for (int k = 0; k < len_a; ++k) {
        t += 1 + static_cast<int32_t>(rng.UniformInt(0, 4));
        a.push_back(t);
      }
      t = 0;
      for (int k = 0; k < len_b; ++k) {
        t += 1 + static_cast<int32_t>(rng.UniformInt(0, 4));
        b.push_back(t);
      }
      ExpectAllVariantsAgree(a, b);
    }
  }
}

TEST_P(IntersectDifferentialTest, FusedFeaturesIsaParameterIsBitIdentical) {
  Rng rng(GetParam() + 500);
  const size_t kRefs = 8;
  const size_t kPaths = 3;
  std::vector<std::vector<NeighborProfile>> profiles(kRefs);
  for (size_t r = 0; r < kRefs; ++r) {
    for (size_t p = 0; p < kPaths; ++p) {
      std::vector<ProfileEntry> entries;
      // Mix slice lengths so some pairs cross the skew trigger.
      const int len = static_cast<int>(rng.UniformInt(0, 2)) == 0
                          ? static_cast<int>(rng.UniformInt(0, 120))
                          : static_cast<int>(rng.UniformInt(0, 6));
      int32_t t = 0;
      for (int k = 0; k < len; ++k) {
        t += 1 + static_cast<int32_t>(rng.UniformInt(0, 2));
        entries.push_back(
            ProfileEntry{t, rng.UniformDouble(), rng.UniformDouble()});
      }
      profiles[r].emplace_back(std::move(entries));
    }
  }
  const ProfileArena arena = ProfileArena::FromProfiles(profiles);
  for (size_t i = 1; i < kRefs; ++i) {
    for (size_t j = 0; j < i; ++j) {
      const PairFeatures scalar =
          FusedFeatures(arena, i, j, KernelIsa::kScalar);
      for (const KernelIsa isa :
           {KernelIsa::kAuto, KernelIsa::kGallop, KernelIsa::kAvx2}) {
        const PairFeatures other = FusedFeatures(arena, i, j, isa);
        for (size_t p = 0; p < kPaths; ++p) {
          EXPECT_EQ(scalar.resemblance[p], other.resemblance[p]);
          EXPECT_EQ(scalar.walk[p], other.walk[p]);
        }
      }
    }
  }
}

TEST_P(IntersectDifferentialTest, CandidateMachinesProduceIdenticalBits) {
  Rng rng(GetParam() + 900);
  // n >= 64 so the bitset path spans multiple row words and the triangle
  // splice crosses word boundaries at every alignment.
  const size_t kRefs = 70;
  const size_t kPaths = 2;
  std::vector<std::vector<NeighborProfile>> profiles(kRefs);
  for (size_t r = 0; r < kRefs; ++r) {
    for (size_t p = 0; p < kPaths; ++p) {
      std::vector<ProfileEntry> entries;
      for (int32_t t = 0; t < 30; ++t) {
        if (rng.Bernoulli(0.2)) {
          entries.push_back(
              ProfileEntry{t, rng.UniformDouble(), rng.UniformDouble()});
        }
      }
      profiles[r].emplace_back(std::move(entries));
    }
  }
  const ProfileArena arena = ProfileArena::FromProfiles(profiles);

  CandidateBuildOptions grouped;
  grouped.bitset_min_refs = 1 << 30;  // force the sparse grouped marking
  CandidateBuildOptions bitset;
  bitset.bitset_min_refs = 0;
  bitset.bitset_cost_factor = 0.0;  // force the bitset rows
  const CandidateSet from_grouped = CandidateSet::Build(arena, grouped);
  const CandidateSet from_bitset = CandidateSet::Build(arena, bitset);
  const CandidateSet from_default = CandidateSet::Build(arena);

  EXPECT_EQ(from_grouped.count(), from_bitset.count());
  EXPECT_EQ(from_grouped.count(), from_default.count());
  for (size_t i = 1; i < kRefs; ++i) {
    for (size_t j = 0; j < i; ++j) {
      EXPECT_EQ(from_grouped.contains(i, j), from_bitset.contains(i, j))
          << "pair (" << i << ", " << j << ")";
      EXPECT_EQ(from_grouped.contains(i, j), from_default.contains(i, j))
          << "pair (" << i << ", " << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectDifferentialTest,
                         ::testing::Values(17, 99, 2024));

}  // namespace
}  // namespace distinct
