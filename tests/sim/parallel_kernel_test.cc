#include "sim/parallel_kernel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>

#include "../test_util.h"
#include "core/distinct.h"
#include "dblp/generator.h"
#include "dblp/schema.h"
#include "sim/profile_arena.h"
#include "sim/profile_store.h"

namespace distinct {
namespace {

/// Serial reference implementation: the pre-kernel per-cell loop over a
/// caching FeatureExtractor. The kernel must reproduce it bit-for-bit.
std::pair<PairMatrix, PairMatrix> SerialMatrices(
    FeatureExtractor& extractor, const SimilarityModel& model,
    const std::vector<int32_t>& refs) {
  const size_t n = refs.size();
  PairMatrix resem(n);
  PairMatrix walk(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      const PairFeatures features = extractor.Compute(refs[i], refs[j]);
      resem.set(i, j, model.Resemblance(features));
      walk.set(i, j, model.Walk(features));
    }
  }
  return std::make_pair(std::move(resem), std::move(walk));
}

void ExpectBitIdentical(const PairMatrix& a, const PairMatrix& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the guarantee is bit-for-bit.
      EXPECT_EQ(a.at(i, j), b.at(i, j)) << "cell (" << i << ", " << j << ")";
    }
  }
}

/// A generated database with one planted mega-name, plus an engine and
/// everything the kernel consumes.
class ParallelKernelTest : public ::testing::Test {
 protected:
  ParallelKernelTest() {
    GeneratorConfig generator;
    generator.seed = 7;
    generator.num_communities = 12;
    generator.authors_per_community = 15;
    generator.ambiguous = {{"Wei Wang", 4, 60}};
    auto dataset = GenerateDblpDataset(generator);
    DISTINCT_CHECK(dataset.ok());
    dataset_ = std::make_unique<DblpDataset>(*std::move(dataset));

    DistinctConfig config;
    config.supervised = false;
    config.promotions = DblpDefaultPromotions();
    auto engine =
        Distinct::Create(dataset_->db, DblpReferenceSpec(), config);
    DISTINCT_CHECK(engine.ok());
    engine_ = std::make_unique<Distinct>(*std::move(engine));

    auto refs = engine_->RefsForName("Wei Wang");
    DISTINCT_CHECK(refs.ok());
    refs_ = *std::move(refs);
    DISTINCT_CHECK(refs_.size() >= 50);
  }

  std::unique_ptr<DblpDataset> dataset_;
  std::unique_ptr<Distinct> engine_;
  std::vector<int32_t> refs_;
};

TEST_F(ParallelKernelTest, ProfileStoreMatchesExtractor) {
  FeatureExtractor extractor(engine_->propagation_engine(), engine_->paths(),
                             engine_->config().propagation);
  const ProfileStore store = ProfileStore::Build(
      engine_->propagation_engine(), engine_->paths(),
      engine_->config().propagation, refs_, /*pool=*/nullptr);
  ASSERT_EQ(store.num_refs(), refs_.size());
  ASSERT_EQ(store.num_paths(), engine_->paths().size());
  for (size_t i = 0; i < refs_.size(); ++i) {
    EXPECT_EQ(store.IndexOf(refs_[i]), static_cast<int64_t>(i));
    const std::vector<NeighborProfile>& expected =
        extractor.ProfilesFor(refs_[i]);
    const std::vector<NeighborProfile>& actual = store.profiles(i);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t p = 0; p < expected.size(); ++p) {
      ASSERT_EQ(actual[p].size(), expected[p].size());
      for (size_t e = 0; e < expected[p].entries().size(); ++e) {
        EXPECT_EQ(actual[p].entries()[e].tuple,
                  expected[p].entries()[e].tuple);
        EXPECT_EQ(actual[p].entries()[e].forward,
                  expected[p].entries()[e].forward);
        EXPECT_EQ(actual[p].entries()[e].reverse,
                  expected[p].entries()[e].reverse);
      }
    }
  }
  EXPECT_EQ(store.IndexOf(-123), -1);
}

TEST_F(ParallelKernelTest, KernelIsBitIdenticalAcrossThreadCounts) {
  FeatureExtractor extractor(engine_->propagation_engine(), engine_->paths(),
                             engine_->config().propagation);
  const auto serial = SerialMatrices(extractor, engine_->model(), refs_);

  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    // Tiny tile size so even ~60 refs produce many tiles.
    PairKernelOptions options;
    options.tile_size = 8;
    options.min_parallel_refs = 2;
    const ProfileStore store = ProfileStore::Build(
        engine_->propagation_engine(), engine_->paths(),
        engine_->config().propagation, refs_, &pool,
        /*min_parallel_refs=*/2);
    const auto parallel =
        ComputePairMatrices(store, engine_->model(), &pool, options);
    ExpectBitIdentical(parallel.first, serial.first);
    ExpectBitIdentical(parallel.second, serial.second);
  }
}

TEST_F(ParallelKernelTest, TileSizeDoesNotChangeResults) {
  ThreadPool pool(4);
  const ProfileStore store = ProfileStore::Build(
      engine_->propagation_engine(), engine_->paths(),
      engine_->config().propagation, refs_, &pool, /*min_parallel_refs=*/2);
  const auto baseline = ComputePairMatrices(store, engine_->model());
  for (const int tile : {1, 3, 16, 1024}) {
    PairKernelOptions options;
    options.tile_size = tile;
    options.min_parallel_refs = 2;
    const auto tiled =
        ComputePairMatrices(store, engine_->model(), &pool, options);
    ExpectBitIdentical(tiled.first, baseline.first);
    ExpectBitIdentical(tiled.second, baseline.second);
  }
}

TEST_F(ParallelKernelTest, EngineComputeMatricesMatchesAcrossThreadCounts) {
  DistinctConfig config = engine_->config();
  auto serial = engine_->ComputeMatrices(refs_);
  ASSERT_TRUE(serial.ok());
  for (const int threads : {2, 8}) {
    config.num_threads = threads;
    auto parallel_engine =
        Distinct::Create(dataset_->db, DblpReferenceSpec(), config);
    ASSERT_TRUE(parallel_engine.ok());
    auto parallel = parallel_engine->ComputeMatrices(refs_);
    ASSERT_TRUE(parallel.ok());
    ExpectBitIdentical(parallel->first, serial->first);
    ExpectBitIdentical(parallel->second, serial->second);
  }
}

// The incremental-catalog seam: matrices patched with UpdatePairMatrices
// after a store splice must be bit-identical to a full fill over the
// updated store — for both kernels, with conservative extra dirty marks,
// and with the mass-bound prune armed.
TEST_F(ParallelKernelTest, UpdatePairMatricesMatchesFullFill) {
  ASSERT_GE(refs_.size(), 20u);
  const size_t old_n = refs_.size() - 8;  // last 8 refs play the append
  const std::vector<int32_t> old_refs(refs_.begin(),
                                      refs_.begin() + old_n);
  const std::vector<int32_t> new_refs(refs_.begin() + old_n, refs_.end());

  for (const PairKernelType kernel :
       {PairKernelType::kFused, PairKernelType::kReference}) {
    for (const bool prune : {false, true}) {
      if (prune && kernel == PairKernelType::kReference) {
        continue;  // the prune is fused-only
      }
      SCOPED_TRACE(std::string(kernel == PairKernelType::kFused ? "fused"
                                                                : "reference") +
                   (prune ? "+prune" : ""));
      PairKernelOptions options;
      options.kernel = kernel;
      options.pruning = prune;
      options.prune_min_sim = prune ? 1e-3 : 0.0;

      ProfileStore store = ProfileStore::Build(
          engine_->propagation_engine(), engine_->paths(),
          engine_->config().propagation, old_refs, /*pool=*/nullptr);
      ProfileArena arena = ProfileArena::FromStore(store);
      const auto old_matrices =
          ComputePairMatrices(store, arena, engine_->model(),
                              /*pool=*/nullptr, options);

      // Splice in the "appended" refs; additionally mark every 5th
      // existing position dirty — their profiles are unchanged, and the
      // conservative re-mark must not change a single bit.
      std::vector<size_t> positions;
      std::vector<char> dirty(refs_.size(), 0);
      for (size_t i = 0; i < old_n; i += 5) {
        positions.push_back(i);
        dirty[i] = 1;
      }
      for (size_t i = old_n; i < refs_.size(); ++i) {
        dirty[i] = 1;
      }
      store.Update(engine_->propagation_engine(), engine_->paths(),
                   engine_->config().propagation, positions, new_refs);
      arena.PatchFromStore(store, positions);

      const auto patched = UpdatePairMatrices(
          store, arena, engine_->model(), dirty, old_matrices.first,
          old_matrices.second, /*pool=*/nullptr, options);
      const auto full = ComputePairMatrices(store, engine_->model(),
                                            /*pool=*/nullptr, options);
      ExpectBitIdentical(patched.first, full.first);
      ExpectBitIdentical(patched.second, full.second);
    }
  }
}

// All-dirty degenerates to a full fill; the partial candidate build must
// cover exactly the same pairs.
TEST_F(ParallelKernelTest, UpdatePairMatricesAllDirtyMatchesFullFill) {
  const ProfileStore store = ProfileStore::Build(
      engine_->propagation_engine(), engine_->paths(),
      engine_->config().propagation, refs_, /*pool=*/nullptr);
  const ProfileArena arena = ProfileArena::FromStore(store);
  const auto full = ComputePairMatrices(store, engine_->model());
  const std::vector<char> dirty(refs_.size(), 1);
  // Stale "old" matrices of the right size; every cell is dirty, so none
  // of these values may survive.
  PairMatrix stale_resem(refs_.size());
  PairMatrix stale_walk(refs_.size());
  for (size_t i = 0; i < refs_.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      stale_resem.set(i, j, 123.0);
      stale_walk.set(i, j, 456.0);
    }
  }
  const auto patched =
      UpdatePairMatrices(store, arena, engine_->model(), dirty, stale_resem,
                         stale_walk);
  ExpectBitIdentical(patched.first, full.first);
  ExpectBitIdentical(patched.second, full.second);
}

// The serving deadline seam: an unfired token must be invisible (results
// stay bit-identical to no token at all), a pre-fired one must abandon the
// fill and mark the token aborted on both the serial and parallel paths.
TEST_F(ParallelKernelTest, UnfiredCancelTokenIsBitInvisible) {
  const ProfileStore store = ProfileStore::Build(
      engine_->propagation_engine(), engine_->paths(),
      engine_->config().propagation, refs_, /*pool=*/nullptr);
  const auto baseline = ComputePairMatrices(store, engine_->model());

  const CancelToken unfired(std::chrono::steady_clock::time_point::max());
  for (const int threads : {0, 4}) {
    SCOPED_TRACE(threads);
    PairKernelOptions options;
    options.tile_size = 8;
    options.min_parallel_refs = 2;
    options.cancel = &unfired;
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(threads);
    }
    const auto result =
        ComputePairMatrices(store, engine_->model(), pool.get(), options);
    EXPECT_FALSE(unfired.aborted());
    ExpectBitIdentical(result.first, baseline.first);
    ExpectBitIdentical(result.second, baseline.second);
  }
}

TEST_F(ParallelKernelTest, FiredCancelTokenAbandonsTheFill) {
  const ProfileStore store = ProfileStore::Build(
      engine_->propagation_engine(), engine_->paths(),
      engine_->config().propagation, refs_, /*pool=*/nullptr);
  for (const int threads : {0, 4}) {
    SCOPED_TRACE(threads);
    CancelToken fired;
    fired.Cancel();
    PairKernelOptions options;
    options.tile_size = 8;
    options.min_parallel_refs = 2;
    options.cancel = &fired;
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(threads);
    }
    const auto result =
        ComputePairMatrices(store, engine_->model(), pool.get(), options);
    // The fill was abandoned: the token records it, and the (partial)
    // matrices must be treated as garbage by the caller.
    EXPECT_TRUE(fired.aborted());
    EXPECT_EQ(result.first.size(), refs_.size());
  }
}

TEST(ParallelKernelEdgeTest, EmptyAndSingletonStores) {
  Database db = testing_util::MakeMiniDblp();
  DistinctConfig config;
  config.supervised = false;
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());
  ThreadPool pool(2);
  for (const std::vector<int32_t>& refs :
       {std::vector<int32_t>{}, std::vector<int32_t>{0}}) {
    const ProfileStore store = ProfileStore::Build(
        engine->propagation_engine(), engine->paths(),
        engine->config().propagation, refs, &pool, /*min_parallel_refs=*/0);
    const auto matrices = ComputePairMatrices(store, engine->model(), &pool);
    EXPECT_EQ(matrices.first.size(), refs.size());
    EXPECT_EQ(matrices.second.size(), refs.size());
  }
}

TEST(ParallelForSharedTest, CoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelForShared(pool, 1000,
                    [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForSharedTest, NestedInsideParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  // Outer: per-group tasks occupy every worker; inner: each group fans its
  // items out to the same (fully busy) pool — the caller must make
  // progress alone.
  ParallelFor(pool, 8, [&](int64_t) {
    ParallelForShared(pool, 100, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ParallelForSharedTest, WorksWithZeroAndOneItems) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelForShared(pool, 0, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  ParallelForShared(pool, 1, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

}  // namespace
}  // namespace distinct
