#include "cluster/pair_matrix.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

TEST(PairMatrixTest, InitialValue) {
  PairMatrix matrix(4, 0.5);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < i; ++j) {
      EXPECT_DOUBLE_EQ(matrix.at(i, j), 0.5);
    }
  }
}

TEST(PairMatrixTest, SetIsSymmetric) {
  PairMatrix matrix(3);
  matrix.set(0, 2, 0.7);
  EXPECT_DOUBLE_EQ(matrix.at(0, 2), 0.7);
  EXPECT_DOUBLE_EQ(matrix.at(2, 0), 0.7);
  matrix.set(2, 1, 0.3);
  EXPECT_DOUBLE_EQ(matrix.at(1, 2), 0.3);
}

TEST(PairMatrixTest, CellsAreIndependent) {
  PairMatrix matrix(5);
  int value = 0;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < i; ++j) {
      matrix.set(i, j, static_cast<double>(value++));
    }
  }
  value = 0;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < i; ++j) {
      EXPECT_DOUBLE_EQ(matrix.at(i, j), static_cast<double>(value++));
    }
  }
}

TEST(PairMatrixTest, TinyMatrices) {
  PairMatrix zero(0);
  EXPECT_EQ(zero.size(), 0u);
  EXPECT_DOUBLE_EQ(zero.MaxValue(), 0.0);
  PairMatrix one(1);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one.MaxValue(), 0.0);
}

TEST(PairMatrixTest, MaxValue) {
  PairMatrix matrix(3, 0.1);
  matrix.set(2, 1, 0.9);
  EXPECT_DOUBLE_EQ(matrix.MaxValue(), 0.9);
}

}  // namespace
}  // namespace distinct
