#include "cluster/linkage.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace distinct {
namespace {

TEST(LinkageTest, NamesAreStable) {
  EXPECT_STREQ(LinkageToString(Linkage::kSingle), "single-link");
  EXPECT_STREQ(LinkageToString(Linkage::kComplete), "complete-link");
  EXPECT_STREQ(LinkageToString(Linkage::kAverage), "average-link");
}

TEST(LinkageTest, TinyInputs) {
  EXPECT_EQ(HierarchicalCluster(PairMatrix(0), Linkage::kAverage, 0.5)
                .num_clusters,
            0);
  EXPECT_EQ(HierarchicalCluster(PairMatrix(1), Linkage::kAverage, 0.5)
                .num_clusters,
            1);
}

/// A chain: 0-1 strong, 1-2 strong, 0-2 weak.
PairMatrix Chain() {
  PairMatrix sim(3);
  sim.set(0, 1, 0.9);
  sim.set(1, 2, 0.9);
  sim.set(0, 2, 0.1);
  return sim;
}

TEST(LinkageTest, SingleLinkChainsThrough) {
  // After merging {0,1}, single-link sim to 2 is max(0.9, 0.1) = 0.9.
  const ClusteringResult result =
      HierarchicalCluster(Chain(), Linkage::kSingle, 0.5);
  EXPECT_EQ(result.num_clusters, 1);
}

TEST(LinkageTest, CompleteLinkBreaksChains) {
  // After merging {0,1}, complete-link sim to 2 is min(0.9, 0.1) = 0.1.
  const ClusteringResult result =
      HierarchicalCluster(Chain(), Linkage::kComplete, 0.5);
  EXPECT_EQ(result.num_clusters, 2);
}

TEST(LinkageTest, AverageLinkIsInBetween) {
  // After merging {0,1}, average sim to 2 is (0.9 + 0.1)/2 = 0.5.
  EXPECT_EQ(
      HierarchicalCluster(Chain(), Linkage::kAverage, 0.45).num_clusters, 1);
  EXPECT_EQ(
      HierarchicalCluster(Chain(), Linkage::kAverage, 0.55).num_clusters, 2);
}

TEST(LinkageTest, AverageLinkWeightsBySize) {
  // Cluster {0,1,2} dense; point 3 similar to 0 only.
  PairMatrix sim(4);
  sim.set(0, 1, 1.0);
  sim.set(0, 2, 1.0);
  sim.set(1, 2, 1.0);
  sim.set(0, 3, 0.6);
  sim.set(1, 3, 0.0);
  sim.set(2, 3, 0.0);
  // Average sim({0,1,2}, {3}) = 0.2.
  EXPECT_EQ(HierarchicalCluster(sim, Linkage::kAverage, 0.25).num_clusters,
            2);
  EXPECT_EQ(HierarchicalCluster(sim, Linkage::kAverage, 0.15).num_clusters,
            1);
}

TEST(LinkageTest, AllLinkagesAgreeOnWellSeparatedBlocks) {
  PairMatrix sim(6);
  auto block = [](size_t i) { return i / 3; };
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < i; ++j) {
      sim.set(i, j, block(i) == block(j) ? 0.9 : 0.0);
    }
  }
  for (const Linkage linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    const ClusteringResult result =
        HierarchicalCluster(sim, linkage, 0.5);
    EXPECT_EQ(result.num_clusters, 2) << LinkageToString(linkage);
    EXPECT_EQ(result.assignment[0], result.assignment[2]);
    EXPECT_EQ(result.assignment[3], result.assignment[5]);
    EXPECT_NE(result.assignment[0], result.assignment[3]);
  }
}

/// Property: single-link never produces more clusters than complete-link.
class LinkageOrderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinkageOrderTest, SingleCoarsensCompleteRefines) {
  Rng rng(GetParam());
  const size_t n = 24;
  PairMatrix sim(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      sim.set(i, j, rng.UniformDouble());
    }
  }
  const double min_sim = 0.6;
  const int single =
      HierarchicalCluster(sim, Linkage::kSingle, min_sim).num_clusters;
  const int average =
      HierarchicalCluster(sim, Linkage::kAverage, min_sim).num_clusters;
  const int complete =
      HierarchicalCluster(sim, Linkage::kComplete, min_sim).num_clusters;
  // Single-link yields the connected components of the threshold graph;
  // average- and complete-link clusters always live inside one component,
  // so single-link is the coarsest of the three.
  EXPECT_LE(single, average);
  EXPECT_LE(single, complete);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkageOrderTest,
                         ::testing::Values(2, 12, 77, 303, 4242));

}  // namespace
}  // namespace distinct
