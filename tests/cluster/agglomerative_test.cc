#include "cluster/agglomerative.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace distinct {
namespace {

/// Two well-separated blocks {0,1,2} and {3,4}.
void TwoBlocks(PairMatrix& resem, PairMatrix& walk) {
  auto block = [](size_t i) { return i < 3 ? 0 : 1; };
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < i; ++j) {
      const bool same = block(i) == block(j);
      resem.set(i, j, same ? 0.5 : 0.01);
      walk.set(i, j, same ? 1e-3 : 1e-6);
    }
  }
}

TEST(AgglomerativeTest, RecoversPlantedBlocks) {
  PairMatrix resem(5);
  PairMatrix walk(5);
  TwoBlocks(resem, walk);
  AgglomerativeOptions options;
  options.min_sim = 1e-3;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_EQ(result.num_clusters, 2);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[0], result.assignment[2]);
  EXPECT_EQ(result.assignment[3], result.assignment[4]);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
  EXPECT_EQ(result.num_merges, 3);
}

TEST(AgglomerativeTest, HighMinSimKeepsSingletons) {
  PairMatrix resem(5);
  PairMatrix walk(5);
  TwoBlocks(resem, walk);
  AgglomerativeOptions options;
  options.min_sim = 10.0;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_EQ(result.num_clusters, 5);
  EXPECT_EQ(result.num_merges, 0);
}

TEST(AgglomerativeTest, ZeroMinSimMergesEverythingLinked) {
  PairMatrix resem(5, 0.1);
  PairMatrix walk(5, 1e-4);
  AgglomerativeOptions options;
  options.min_sim = 1e-9;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_EQ(result.num_merges, 4);
}

TEST(AgglomerativeTest, EmptyAndSingleton) {
  const ClusteringResult empty =
      ClusterReferences(PairMatrix(0), PairMatrix(0), {});
  EXPECT_EQ(empty.num_clusters, 0);
  EXPECT_TRUE(empty.assignment.empty());

  const ClusteringResult one =
      ClusterReferences(PairMatrix(1), PairMatrix(1), {});
  EXPECT_EQ(one.num_clusters, 1);
  EXPECT_EQ(one.assignment, std::vector<int>{0});
}

TEST(AgglomerativeTest, ResemblanceOnlyIgnoresWalk) {
  PairMatrix resem(4);
  PairMatrix walk(4);
  // Resemblance links {0,1}; walk links {2,3} strongly.
  resem.set(0, 1, 0.9);
  walk.set(2, 3, 0.9);
  AgglomerativeOptions options;
  options.min_sim = 0.1;
  options.measure = ClusterMeasure::kResemblanceOnly;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_NE(result.assignment[2], result.assignment[3]);
}

TEST(AgglomerativeTest, WalkOnlyIgnoresResemblance) {
  PairMatrix resem(4);
  PairMatrix walk(4);
  resem.set(0, 1, 0.9);
  walk.set(2, 3, 0.9);
  AgglomerativeOptions options;
  options.min_sim = 0.1;
  options.measure = ClusterMeasure::kWalkOnly;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_NE(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[2], result.assignment[3]);
}

TEST(AgglomerativeTest, CompositeNeedsBothSignals) {
  PairMatrix resem(4);
  PairMatrix walk(4);
  // Pair (0,1): resemblance only. Pair (2,3): both measures.
  resem.set(0, 1, 0.9);
  resem.set(2, 3, 0.9);
  walk.set(2, 3, 0.9);
  AgglomerativeOptions options;
  options.min_sim = 0.5;
  options.measure = ClusterMeasure::kComposite;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  // sqrt(0.9 * 0) = 0 < 0.5 for (0,1); sqrt(0.9 * 0.9) = 0.9 for (2,3).
  EXPECT_NE(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[2], result.assignment[3]);
}

TEST(AgglomerativeTest, GeometricVsArithmeticCombination) {
  PairMatrix resem(2);
  PairMatrix walk(2);
  resem.set(0, 1, 0.8);
  walk.set(0, 1, 1e-6);
  AgglomerativeOptions options;
  options.min_sim = 0.01;
  options.combine = CombineRule::kGeometricMean;
  // sqrt(0.8e-6) ≈ 9e-4 < 0.01: no merge.
  EXPECT_EQ(ClusterReferences(resem, walk, options).num_clusters, 2);
  options.combine = CombineRule::kArithmeticMean;
  // (0.8 + 1e-6)/2 ≈ 0.4 > 0.01: the large measure drowns the small one.
  EXPECT_EQ(ClusterReferences(resem, walk, options).num_clusters, 1);
}

TEST(AgglomerativeTest, BruteForceMatchesIncremental) {
  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 20;
    PairMatrix resem(n);
    PairMatrix walk(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < i; ++j) {
        resem.set(i, j, rng.UniformDouble());
        walk.set(i, j, rng.UniformDouble() * 1e-2);
      }
    }
    AgglomerativeOptions options;
    options.min_sim = 0.02;
    options.incremental = true;
    const ClusteringResult incremental =
        ClusterReferences(resem, walk, options);
    options.incremental = false;
    const ClusteringResult brute = ClusterReferences(resem, walk, options);
    EXPECT_EQ(incremental.assignment, brute.assignment);
    EXPECT_EQ(incremental.num_merges, brute.num_merges);
  }
}

TEST(AgglomerativeTest, AssignmentIdsAreDense) {
  PairMatrix resem(6);
  PairMatrix walk(6);
  resem.set(0, 3, 0.9);
  walk.set(0, 3, 0.9);
  AgglomerativeOptions options;
  options.min_sim = 0.5;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  std::set<int> ids(result.assignment.begin(), result.assignment.end());
  EXPECT_EQ(static_cast<int>(ids.size()), result.num_clusters);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), result.num_clusters - 1);
}

TEST(AgglomerativeTest, DebugString) {
  PairMatrix resem(2);
  PairMatrix walk(2);
  const ClusteringResult result = ClusterReferences(resem, walk, {});
  EXPECT_NE(result.DebugString().find("2 references"), std::string::npos);
}

/// Property sweep over sizes: merging monotonically decreases cluster count
/// and every reference lands in exactly one cluster.
class AgglomerativeSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AgglomerativeSizeTest, BasicInvariants) {
  const size_t n = GetParam();
  Rng rng(n * 31 + 1);
  PairMatrix resem(n);
  PairMatrix walk(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      resem.set(i, j, rng.UniformDouble());
      walk.set(i, j, rng.UniformDouble() * 1e-3);
    }
  }
  AgglomerativeOptions options;
  options.min_sim = 5e-3;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_EQ(result.assignment.size(), n);
  EXPECT_EQ(result.num_clusters + result.num_merges,
            static_cast<int>(n));
  for (const int id : result.assignment) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, result.num_clusters);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AgglomerativeSizeTest,
                         ::testing::Values(2, 3, 10, 37, 100));

}  // namespace
}  // namespace distinct
