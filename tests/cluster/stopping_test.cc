// Tests for the merge log (dendrogram) and the largest-gap stopping rule.

#include <gtest/gtest.h>

#include "cluster/agglomerative.h"
#include "common/rng.h"

namespace distinct {
namespace {

/// Blocks {0,1,2} and {3,4} with in-block similarity ~0.5 and cross-block
/// similarity ~5e-3: a two-decade gap for the gap rule to find.
void GappedBlocks(PairMatrix& resem, PairMatrix& walk, Rng& rng) {
  auto block = [](size_t i) { return i < 3 ? 0 : 1; };
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < i; ++j) {
      const bool same = block(i) == block(j);
      resem.set(i, j, same ? 0.45 + 0.1 * rng.UniformDouble()
                           : 4e-3 + 2e-3 * rng.UniformDouble());
      walk.set(i, j, same ? 1e-3 : 1e-5);
    }
  }
}

TEST(MergeLogTest, RecordsEveryMerge) {
  PairMatrix resem(4, 0.5);
  PairMatrix walk(4, 1e-3);
  AgglomerativeOptions options;
  options.min_sim = 1e-6;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_EQ(result.num_clusters, 1);
  ASSERT_EQ(result.merges.size(), 3u);
  EXPECT_EQ(result.num_merges, 3);
  for (const MergeStep& merge : result.merges) {
    EXPECT_GE(merge.into, 0);
    EXPECT_GE(merge.from, 0);
    EXPECT_NE(merge.into, merge.from);
    EXPECT_GT(merge.similarity, 0.0);
  }
}

TEST(MergeLogTest, SimilaritiesAreRecordedAtMergeTime) {
  // Uniform similarities: every recorded merge similarity must be the
  // composite of equal-valued cells (monotone non-increasing is the
  // classic dendrogram property for average-style linkages on uniform
  // data).
  PairMatrix resem(6, 0.3);
  PairMatrix walk(6, 1e-3);
  AgglomerativeOptions options;
  options.min_sim = 1e-9;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  ASSERT_EQ(result.merges.size(), 5u);
  for (const MergeStep& merge : result.merges) {
    EXPECT_GT(merge.similarity, 0.0);
  }
}

TEST(LargestGapTest, FindsThePlantedCut) {
  Rng rng(5);
  PairMatrix resem(5);
  PairMatrix walk(5);
  GappedBlocks(resem, walk, rng);

  AgglomerativeOptions options;
  options.min_sim = 1e-9;  // no threshold help: the gap must do the work
  options.stopping = StoppingRule::kLargestGap;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_EQ(result.num_clusters, 2);
  EXPECT_EQ(result.assignment[0], result.assignment[2]);
  EXPECT_EQ(result.assignment[3], result.assignment[4]);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
}

TEST(LargestGapTest, FixedThresholdWouldOvermergeHere) {
  Rng rng(5);
  PairMatrix resem(5);
  PairMatrix walk(5);
  GappedBlocks(resem, walk, rng);

  AgglomerativeOptions options;
  options.min_sim = 1e-9;
  options.stopping = StoppingRule::kFixedThreshold;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_EQ(result.num_clusters, 1);  // merges straight through the gap
}

TEST(LargestGapTest, NoPronouncedGapKeepsAllMerges) {
  // Smoothly decaying similarities (ratio < 3 between consecutive merges):
  // the gap rule should not cut anything.
  PairMatrix resem(4);
  PairMatrix walk(4);
  // Chain with gently decreasing strengths.
  resem.set(0, 1, 0.50);
  resem.set(1, 2, 0.40);
  resem.set(2, 3, 0.30);
  resem.set(0, 2, 0.35);
  resem.set(1, 3, 0.28);
  resem.set(0, 3, 0.26);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < i; ++j) {
      walk.set(i, j, 1e-3);
    }
  }
  AgglomerativeOptions fixed;
  fixed.min_sim = 1e-9;
  AgglomerativeOptions gap = fixed;
  gap.stopping = StoppingRule::kLargestGap;
  const ClusteringResult fixed_result =
      ClusterReferences(resem, walk, fixed);
  const ClusteringResult gap_result = ClusterReferences(resem, walk, gap);
  EXPECT_EQ(gap_result.num_clusters, fixed_result.num_clusters);
  EXPECT_EQ(gap_result.assignment, fixed_result.assignment);
}

TEST(LargestGapTest, MinSimFloorStillApplies) {
  Rng rng(9);
  PairMatrix resem(5);
  PairMatrix walk(5);
  GappedBlocks(resem, walk, rng);
  AgglomerativeOptions options;
  options.stopping = StoppingRule::kLargestGap;
  options.min_sim = 10.0;  // floor above everything: nothing merges
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_EQ(result.num_clusters, 5);
  EXPECT_TRUE(result.merges.empty());
}

TEST(LargestGapTest, GapFactorIsConfigurable) {
  Rng rng(5);
  PairMatrix resem(5);
  PairMatrix walk(5);
  GappedBlocks(resem, walk, rng);

  AgglomerativeOptions options;
  options.min_sim = 1e-9;
  options.stopping = StoppingRule::kLargestGap;

  // A factor above the planted two-decade gap: no drop qualifies, so the
  // sequence merges straight through to one cluster.
  options.gap_factor = 1e4;
  const ClusteringResult lenient = ClusterReferences(resem, walk, options);
  EXPECT_EQ(lenient.num_clusters, 1);

  // The default factor finds the planted cut.
  options.gap_factor = AgglomerativeOptions{}.gap_factor;
  const ClusteringResult standard = ClusterReferences(resem, walk, options);
  EXPECT_EQ(standard.num_clusters, 2);

  // A tiny factor cuts at the very largest drop as well — same cut here,
  // since the planted gap dominates every other ratio.
  options.gap_factor = 1.01;
  const ClusteringResult strict = ClusterReferences(resem, walk, options);
  EXPECT_EQ(strict.assignment, standard.assignment);
}

TEST(MergeLogTest, StrawmanMatchesIncrementalEngine) {
  // The non-incremental strawman (no running-sum matrices) must produce
  // exactly the incremental engine's merges.
  Rng rng(17);
  const size_t n = 12;
  PairMatrix resem(n);
  PairMatrix walk(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      resem.set(i, j, rng.UniformDouble());
      walk.set(i, j, rng.UniformDouble() * 1e-3);
    }
  }
  AgglomerativeOptions incremental;
  incremental.min_sim = 5e-3;
  AgglomerativeOptions strawman = incremental;
  strawman.incremental = false;
  const ClusteringResult a = ClusterReferences(resem, walk, incremental);
  const ClusteringResult b = ClusterReferences(resem, walk, strawman);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.num_merges, b.num_merges);
}

TEST(LargestGapTest, SingleMergeSequencesPassThrough) {
  PairMatrix resem(2);
  PairMatrix walk(2);
  resem.set(0, 1, 0.5);
  walk.set(0, 1, 1e-3);
  AgglomerativeOptions options;
  options.min_sim = 1e-9;
  options.stopping = StoppingRule::kLargestGap;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_EQ(result.num_clusters, 1);
}

TEST(LargestGapTest, TwoRefsZeroMergesUnderFloor) {
  // 2 references whose only pair sits below the floor: zero executed
  // merges reach the gap rule, which must keep the (empty) sequence
  // instead of inspecting a gap that does not exist.
  PairMatrix resem(2);
  PairMatrix walk(2);
  resem.set(0, 1, 1e-6);
  walk.set(0, 1, 1e-9);
  AgglomerativeOptions options;
  options.min_sim = 1e-2;
  options.stopping = StoppingRule::kLargestGap;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_EQ(result.num_clusters, 2);
  EXPECT_TRUE(result.merges.empty());
  EXPECT_EQ(result.num_merges, 0);
}

TEST(LargestGapTest, ThreeRefsSingleMergePassesThrough) {
  // 3 references where only one pair clears the floor: exactly one merge
  // executes, so the delta list is empty — the gap rule must keep that
  // merge rather than cut it (or read past the singleton sequence).
  PairMatrix resem(3);
  PairMatrix walk(3);
  resem.set(0, 1, 0.5);   // clears the floor
  resem.set(0, 2, 1e-6);  // under it
  resem.set(1, 2, 1e-6);
  walk.set(0, 1, 1e-3);
  walk.set(0, 2, 1e-9);
  walk.set(1, 2, 1e-9);
  AgglomerativeOptions options;
  options.min_sim = 1e-2;
  options.stopping = StoppingRule::kLargestGap;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  EXPECT_EQ(result.num_clusters, 2);
  ASSERT_EQ(result.merges.size(), 1u);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_NE(result.assignment[0], result.assignment[2]);
}

TEST(LargestGapTest, GapAtExactlyTheFactorQualifies) {
  // The documented contract: a drop counts when it reaches gap_factor —
  // a boundary ratio must cut, not pass. Similarities 0.4 / 0.1 give an
  // exact 4.0 ratio between consecutive merges.
  PairMatrix resem(4);
  PairMatrix walk(4);
  resem.set(0, 1, 0.4);
  resem.set(2, 3, 0.1);
  AgglomerativeOptions options;
  options.min_sim = 1e-9;
  options.stopping = StoppingRule::kLargestGap;
  options.measure = ClusterMeasure::kResemblanceOnly;
  options.gap_factor = 4.0;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  // {0,1} merge at 0.4, {2,3} at 0.1; the 4.0 drop qualifies, cutting the
  // second merge away.
  EXPECT_EQ(result.num_clusters, 3);
  ASSERT_EQ(result.merges.size(), 1u);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_NE(result.assignment[2], result.assignment[3]);
}

TEST(MergeLogTest, AssignmentConsistentWithMerges) {
  Rng rng(31);
  const size_t n = 20;
  PairMatrix resem(n);
  PairMatrix walk(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      resem.set(i, j, rng.UniformDouble());
      walk.set(i, j, rng.UniformDouble() * 1e-3);
    }
  }
  AgglomerativeOptions options;
  options.min_sim = 5e-3;
  const ClusteringResult result = ClusterReferences(resem, walk, options);
  // Replay the merges with union-find; components must equal assignment.
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    return parent[static_cast<size_t>(x)] == x
               ? x
               : (parent[static_cast<size_t>(x)] =
                      find(parent[static_cast<size_t>(x)]));
  };
  for (const MergeStep& merge : result.merges) {
    parent[static_cast<size_t>(find(merge.from))] = find(merge.into);
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(result.assignment[i] == result.assignment[j],
                find(static_cast<int>(i)) == find(static_cast<int>(j)));
    }
  }
}

}  // namespace
}  // namespace distinct
