#include "music/catalog.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "core/distinct.h"
#include "eval/metrics.h"

namespace distinct {
namespace {

MusicConfig SmallConfig(uint64_t seed = 3) {
  MusicConfig config;
  config.seed = seed;
  config.num_artists = 40;
  config.albums_per_artist = 3;
  config.songs_per_artist = 8;
  config.ambiguous = {{"Forgotten", 5, 20}, {"Ember", 2, 6}};
  return config;
}

TEST(MusicCatalogTest, SchemaAndSpecResolve) {
  auto db = MakeEmptyMusicDatabase();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_tables(), 5);
  EXPECT_TRUE(ResolveReferenceSpec(*db, MusicReferenceSpec()).ok());
  for (const auto& [table, column] : MusicDefaultPromotions()) {
    auto found = db->FindTable(table);
    ASSERT_TRUE(found.ok()) << table;
    EXPECT_TRUE((*found)->ColumnIndex(column).ok()) << table << "." << column;
  }
}

TEST(MusicCatalogTest, IntegrityAndExactCounts) {
  auto dataset = GenerateMusicCatalog(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset->db.ValidateIntegrity().ok());
  ASSERT_EQ(dataset->cases.size(), 2u);
  EXPECT_EQ(dataset->cases[0].title, "Forgotten");
  EXPECT_EQ(dataset->cases[0].track_rows.size(), 20u);
  std::set<int> used(dataset->cases[0].truth.begin(),
                     dataset->cases[0].truth.end());
  EXPECT_EQ(used.size(), 5u);  // every planted song has >= 1 track
  EXPECT_EQ(dataset->cases[1].track_rows.size(), 6u);
}

TEST(MusicCatalogTest, OneSongsRowPerDistinctTitle) {
  auto dataset = GenerateMusicCatalog(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  const Table& songs = **dataset->db.FindTable(kSongsTable);
  std::set<std::string> titles;
  const int title_col = *songs.ColumnIndex("title");
  for (int64_t row = 0; row < songs.num_rows(); ++row) {
    EXPECT_TRUE(titles.insert(songs.GetString(row, title_col)).second);
  }
  EXPECT_TRUE(titles.contains("Forgotten"));
}

TEST(MusicCatalogTest, AmbiguousSongsBelongToDistinctArtists) {
  auto dataset = GenerateMusicCatalog(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  const Table& tracks = **dataset->db.FindTable(kTracksTable);
  const Table& albums = **dataset->db.FindTable(kAlbumsTable);
  const int album_col = *tracks.ColumnIndex("album_id");
  const int artist_col = *albums.ColumnIndex("artist_id");
  const MusicCase& c = dataset->cases[0];
  std::unordered_map<int, int64_t> artist_of_song;
  for (size_t i = 0; i < c.track_rows.size(); ++i) {
    const int64_t album = tracks.GetInt(c.track_rows[i], album_col);
    const int64_t album_row = *albums.RowForPrimaryKey(album);
    const int64_t artist = albums.GetInt(album_row, artist_col);
    auto [it, inserted] = artist_of_song.emplace(c.truth[i], artist);
    // All tracks of one real song live on one artist's albums.
    EXPECT_EQ(it->second, artist) << "song " << c.truth[i];
  }
  // And distinct songs belong to distinct artists.
  std::set<int64_t> artists;
  for (const auto& [song, artist] : artist_of_song) {
    EXPECT_TRUE(artists.insert(artist).second);
  }
}

TEST(MusicCatalogTest, DeterministicForSeed) {
  auto a = GenerateMusicCatalog(SmallConfig(9));
  auto b = GenerateMusicCatalog(SmallConfig(9));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->db.TotalRows(), b->db.TotalRows());
  EXPECT_EQ(a->cases[0].track_rows, b->cases[0].track_rows);
  EXPECT_EQ(a->cases[0].truth, b->cases[0].truth);
}

TEST(MusicCatalogTest, RejectsBadConfigs) {
  MusicConfig config = SmallConfig();
  config.num_artists = 0;
  EXPECT_FALSE(GenerateMusicCatalog(config).ok());

  config = SmallConfig();
  config.ambiguous = {{"X", 5, 3}};
  EXPECT_FALSE(GenerateMusicCatalog(config).ok());

  config = SmallConfig();
  config.num_artists = 3;
  config.ambiguous = {{"X", 5, 10}};  // more songs than artists
  EXPECT_FALSE(GenerateMusicCatalog(config).ok());
}

TEST(MusicCatalogTest, DistinctResolvesThePlantedTitle) {
  // The paper's motivating scenario end to end: split the tracks of one
  // shared title by real song, using album/artist/label linkage only.
  auto dataset = GenerateMusicCatalog(SmallConfig());
  ASSERT_TRUE(dataset.ok());

  DistinctConfig config;
  config.supervised = false;  // titles are not person names
  config.promotions = MusicDefaultPromotions();
  auto engine =
      Distinct::Create(dataset->db, MusicReferenceSpec(), config);
  ASSERT_TRUE(engine.ok());

  // min-sim is dataset-specific (the paper calibrates it per database);
  // assert that SOME threshold separates the planted songs near-perfectly
  // — i.e. the linkage signal is there and the engine exposes it.
  const MusicCase& c = dataset->cases[0];
  auto matrices = engine->ComputeMatrices(c.track_rows);
  ASSERT_TRUE(matrices.ok());
  double best_f1 = 0.0;
  AgglomerativeOptions options = engine->cluster_options();
  for (double min_sim = 1e-4; min_sim < 1.0; min_sim *= 1.5) {
    options.min_sim = min_sim;
    const ClusteringResult clustering =
        ClusterReferences(matrices->first, matrices->second, options);
    best_f1 = std::max(
        best_f1, PairwisePrecisionRecall(c.truth, clustering.assignment).f1);
  }
  EXPECT_GT(best_f1, 0.9);
}

}  // namespace
}  // namespace distinct
