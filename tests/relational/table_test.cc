#include "relational/table.h"

#include <gtest/gtest.h>

namespace distinct {
namespace {

Table MakeAuthors() {
  auto table = Table::Create(
      "Authors", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
                  ColumnSpec{"name", ColumnType::kString, false, ""}});
  return *std::move(table);
}

TEST(TableCreateTest, RejectsBadSchemas) {
  EXPECT_FALSE(Table::Create("", {ColumnSpec{"a", ColumnType::kInt64, false, ""}}).ok());
  EXPECT_FALSE(Table::Create("t", {}).ok());
  EXPECT_FALSE(
      Table::Create("t", {ColumnSpec{"a", ColumnType::kInt64, false, ""},
                          ColumnSpec{"a", ColumnType::kInt64, false, ""}}).ok());
  EXPECT_FALSE(Table::Create("t", {ColumnSpec{"", ColumnType::kInt64, false, ""}}).ok());
  // Two primary keys.
  EXPECT_FALSE(Table::Create("t", {ColumnSpec{"a", ColumnType::kInt64, true,
                                              ""},
                                   ColumnSpec{"b", ColumnType::kInt64, true,
                                              ""}})
                   .ok());
  // String primary key.
  EXPECT_FALSE(
      Table::Create("t", {ColumnSpec{"a", ColumnType::kString, true, ""}})
          .ok());
  // String foreign key.
  EXPECT_FALSE(
      Table::Create("t", {ColumnSpec{"a", ColumnType::kString, false, "x"}})
          .ok());
}

TEST(TableTest, AppendAndReadBack) {
  Table table = MakeAuthors();
  ASSERT_TRUE(table.AppendRow({Value::Int(7), Value::Str("Wei Wang")}).ok());
  EXPECT_EQ(table.num_rows(), 1);
  EXPECT_EQ(table.GetInt(0, 0), 7);
  EXPECT_EQ(table.GetString(0, 1), "Wei Wang");
}

TEST(TableTest, ArityMismatchRejected) {
  Table table = MakeAuthors();
  EXPECT_FALSE(table.AppendRow({Value::Int(1)}).ok());
  EXPECT_FALSE(
      table.AppendRow({Value::Int(1), Value::Str("a"), Value::Str("b")})
          .ok());
  EXPECT_EQ(table.num_rows(), 0);
}

TEST(TableTest, TypeMismatchRejected) {
  Table table = MakeAuthors();
  EXPECT_FALSE(table.AppendRow({Value::Str("x"), Value::Str("a")}).ok());
  EXPECT_FALSE(table.AppendRow({Value::Int(1), Value::Int(2)}).ok());
}

TEST(TableTest, DuplicatePrimaryKeyRejected) {
  Table table = MakeAuthors();
  ASSERT_TRUE(table.AppendRow({Value::Int(1), Value::Str("a")}).ok());
  const auto duplicate = table.AppendRow({Value::Int(1), Value::Str("b")});
  EXPECT_EQ(duplicate.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(table.num_rows(), 1);
}

TEST(TableTest, NullPrimaryKeyRejected) {
  Table table = MakeAuthors();
  EXPECT_FALSE(table.AppendRow({Value::Null(), Value::Str("a")}).ok());
}

TEST(TableTest, NullCellsRoundTrip) {
  Table table = MakeAuthors();
  ASSERT_TRUE(table.AppendRow({Value::Int(1), Value::Null()}).ok());
  EXPECT_TRUE(table.IsNull(0, 1));
  EXPECT_TRUE(table.GetValue(0, 1).is_null());
  EXPECT_FALSE(table.IsNull(0, 0));
}

TEST(TableTest, PrimaryKeyLookup) {
  Table table = MakeAuthors();
  ASSERT_TRUE(table.AppendRow({Value::Int(10), Value::Str("a")}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int(20), Value::Str("b")}).ok());
  EXPECT_EQ(*table.RowForPrimaryKey(20), 1);
  EXPECT_EQ(*table.RowForPrimaryKey(10), 0);
  EXPECT_EQ(table.RowForPrimaryKey(99).status().code(),
            StatusCode::kNotFound);
}

TEST(TableTest, NoPrimaryKeyLookupFails) {
  auto table = Table::Create("t", {ColumnSpec{"v", ColumnType::kInt64, false, ""}});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->RowForPrimaryKey(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(table->primary_key_column(), -1);
}

TEST(TableTest, ColumnIndex) {
  Table table = MakeAuthors();
  EXPECT_EQ(*table.ColumnIndex("name"), 1);
  EXPECT_EQ(*table.ColumnIndex("id"), 0);
  EXPECT_EQ(table.ColumnIndex("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(TableTest, StringDictionaryIsShared) {
  Table table = MakeAuthors();
  ASSERT_TRUE(table.AppendRow({Value::Int(1), Value::Str("same")}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int(2), Value::Str("same")}).ok());
  EXPECT_EQ(table.raw(0, 1), table.raw(1, 1));
  EXPECT_EQ(table.dictionary(1).size(), 1);
}

TEST(TableTest, FindAndInternString) {
  Table table = MakeAuthors();
  EXPECT_FALSE(table.FindString(1, "ghost").has_value());
  const int64_t id = table.InternString(1, "ghost");
  EXPECT_EQ(table.FindString(1, "ghost"), id);
  EXPECT_EQ(table.num_rows(), 0);  // interning adds no rows
}

TEST(TableTest, ReservedNullSentinelRejected) {
  Table table = MakeAuthors();
  EXPECT_FALSE(
      table.AppendRow({Value::Int(kNullCell), Value::Str("a")}).ok());
}

TEST(TableTest, DebugStringMentionsSchema) {
  Table table = MakeAuthors();
  const std::string debug = table.DebugString();
  EXPECT_NE(debug.find("Authors"), std::string::npos);
  EXPECT_NE(debug.find("PK"), std::string::npos);
  EXPECT_NE(debug.find("0 rows"), std::string::npos);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_EQ(Value::Str("s").AsString(), "s");
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).DebugString(), "5");
  EXPECT_EQ(Value::Str("s").DebugString(), "\"s\"");
  EXPECT_EQ(Value::Null().DebugString(), "NULL");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_FALSE(Value::Int(5) == Value::Int(6));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_FALSE(Value::Str("a") == Value::Int(0));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_FALSE(Value::Null() == Value::Int(0));
}

}  // namespace
}  // namespace distinct
