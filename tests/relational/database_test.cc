#include "relational/database.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace distinct {
namespace {

Table MakeTable(const std::string& name) {
  return *Table::Create(name, {ColumnSpec{"id", ColumnType::kInt64, true,
                                          ""}});
}

TEST(DatabaseTest, AddAndFindTables) {
  Database db;
  EXPECT_EQ(*db.AddTable(MakeTable("a")), 0);
  EXPECT_EQ(*db.AddTable(MakeTable("b")), 1);
  EXPECT_EQ(db.num_tables(), 2);
  EXPECT_EQ(*db.TableId("b"), 1);
  EXPECT_EQ((*db.FindTable("a"))->name(), "a");
  EXPECT_EQ(db.TableId("missing").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, DuplicateNameRejected) {
  Database db;
  ASSERT_TRUE(db.AddTable(MakeTable("t")).ok());
  EXPECT_EQ(db.AddTable(MakeTable("t")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, MutableAccess) {
  Database db;
  ASSERT_TRUE(db.AddTable(MakeTable("t")).ok());
  Table* table = *db.FindMutableTable("t");
  ASSERT_TRUE(table->AppendRow({Value::Int(1)}).ok());
  EXPECT_EQ(db.table(0).num_rows(), 1);
}

TEST(DatabaseTest, TotalRows) {
  Database db = testing_util::MakeMiniDblp();
  // 5 authors + 3 conferences + 3 proceedings + 3 papers + 7 publish rows.
  EXPECT_EQ(db.TotalRows(), 21);
}

TEST(DatabaseTest, ValidateIntegrityPassesOnMiniDblp) {
  Database db = testing_util::MakeMiniDblp();
  EXPECT_TRUE(db.ValidateIntegrity().ok());
}

TEST(DatabaseTest, ValidateCatchesDanglingFk) {
  Database db;
  ASSERT_TRUE(db.AddTable(MakeTable("target")).ok());
  auto referrer = Table::Create(
      "referrer", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
                   ColumnSpec{"fk", ColumnType::kInt64, false, "target"}});
  ASSERT_TRUE(referrer.ok());
  ASSERT_TRUE(
      referrer->AppendRow({Value::Int(0), Value::Int(99)}).ok());
  ASSERT_TRUE(db.AddTable(*std::move(referrer)).ok());
  const Status status = db.ValidateIntegrity();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("dangling"), std::string::npos);
}

TEST(DatabaseTest, ValidateCatchesMissingTargetTable) {
  Database db;
  auto referrer = Table::Create(
      "referrer", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
                   ColumnSpec{"fk", ColumnType::kInt64, false, "ghost"}});
  ASSERT_TRUE(db.AddTable(*std::move(referrer)).ok());
  EXPECT_FALSE(db.ValidateIntegrity().ok());
}

TEST(DatabaseTest, ValidateAllowsNullFks) {
  Database db;
  ASSERT_TRUE(db.AddTable(MakeTable("target")).ok());
  auto referrer = Table::Create(
      "referrer", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
                   ColumnSpec{"fk", ColumnType::kInt64, false, "target"}});
  ASSERT_TRUE(referrer->AppendRow({Value::Int(0), Value::Null()}).ok());
  ASSERT_TRUE(db.AddTable(*std::move(referrer)).ok());
  EXPECT_TRUE(db.ValidateIntegrity().ok());
}

TEST(DatabaseTest, DebugStringListsTables) {
  Database db = testing_util::MakeMiniDblp();
  const std::string debug = db.DebugString();
  EXPECT_NE(debug.find("Authors"), std::string::npos);
  EXPECT_NE(debug.find("Publish"), std::string::npos);
  EXPECT_NE(debug.find("5 tables"), std::string::npos);
}

}  // namespace
}  // namespace distinct
