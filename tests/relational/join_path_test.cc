#include "relational/join_path.h"

#include <set>

#include <gtest/gtest.h>

#include "../test_util.h"

namespace distinct {
namespace {

class JoinPathTest : public ::testing::Test {
 protected:
  JoinPathTest() : db_(testing_util::MakeMiniDblp()) {
    auto graph = SchemaGraph::Build(db_);
    DISTINCT_CHECK(graph.ok());
    graph_ = std::make_unique<SchemaGraph>(*std::move(graph));
    publish_ = *graph_->NodeForTable(kPublishTable);
  }

  Database db_;
  std::unique_ptr<SchemaGraph> graph_;
  int publish_ = -1;
};

TEST_F(JoinPathTest, LengthOnePathsAreTheOutgoingEdges) {
  PathEnumerationOptions options;
  options.max_length = 1;
  const auto paths = EnumerateJoinPaths(*graph_, publish_, options);
  ASSERT_EQ(paths.size(), 2u);  // author edge + paper edge
  for (const JoinPath& path : paths) {
    EXPECT_EQ(path.length(), 1);
    EXPECT_EQ(path.start_node, publish_);
  }
}

TEST_F(JoinPathTest, CountsGrowWithLength) {
  PathEnumerationOptions options;
  options.max_length = 1;
  const size_t len1 = EnumerateJoinPaths(*graph_, publish_, options).size();
  options.max_length = 2;
  const size_t len2 = EnumerateJoinPaths(*graph_, publish_, options).size();
  options.max_length = 3;
  const size_t len3 = EnumerateJoinPaths(*graph_, publish_, options).size();
  EXPECT_LT(len1, len2);
  EXPECT_LT(len2, len3);
}

TEST_F(JoinPathTest, EveryPathEndsWhereTraverseSaysItDoes) {
  PathEnumerationOptions options;
  options.max_length = 4;
  for (const JoinPath& path : EnumerateJoinPaths(*graph_, publish_,
                                                 options)) {
    int node = path.start_node;
    for (const JoinStep& step : path.steps) {
      node = graph_->Traverse(node, IncidentEdge{step.edge_id,
                                                 step.forward});
    }
    EXPECT_EQ(path.EndNode(*graph_), node);
  }
}

TEST_F(JoinPathTest, PathsAreUnique) {
  PathEnumerationOptions options;
  options.max_length = 4;
  const auto paths = EnumerateJoinPaths(*graph_, publish_, options);
  std::set<std::string> descriptions;
  for (const JoinPath& path : paths) {
    EXPECT_TRUE(descriptions.insert(path.Describe(*graph_)).second)
        << "duplicate path " << path.Describe(*graph_);
  }
}

TEST_F(JoinPathTest, ForbiddenFirstStepExcluded) {
  // Find the author edge.
  int author_edge = -1;
  for (int e = 0; e < graph_->num_edges(); ++e) {
    if (graph_->edge(e).to_node == *graph_->NodeForTable(kAuthorsTable)) {
      author_edge = e;
    }
  }
  ASSERT_GE(author_edge, 0);

  PathEnumerationOptions options;
  options.max_length = 3;
  options.forbidden_first_steps.push_back(JoinStep{author_edge, true});
  for (const JoinPath& path : EnumerateJoinPaths(*graph_, publish_,
                                                 options)) {
    EXPECT_FALSE(path.steps.front() == (JoinStep{author_edge, true}))
        << path.Describe(*graph_);
  }
  // But the author edge may still appear later in a path.
  bool author_edge_used_later = false;
  for (const JoinPath& path : EnumerateJoinPaths(*graph_, publish_,
                                                 options)) {
    for (size_t s = 1; s < path.steps.size(); ++s) {
      if (path.steps[s].edge_id == author_edge) {
        author_edge_used_later = true;
      }
    }
  }
  EXPECT_TRUE(author_edge_used_later);
}

TEST_F(JoinPathTest, CoauthorPathExists) {
  PathEnumerationOptions options;
  options.max_length = 3;
  bool found = false;
  for (const JoinPath& path : EnumerateJoinPaths(*graph_, publish_,
                                                 options)) {
    if (path.Describe(*graph_) ==
        "Publish -paper_id-> Publications <-paper_id- Publish "
        "-author_id-> Authors") {
      found = true;
      EXPECT_EQ(path.EndNode(*graph_), *graph_->NodeForTable(kAuthorsTable));
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(JoinPathTest, DescribeMentionsDirections) {
  PathEnumerationOptions options;
  options.max_length = 2;
  bool saw_forward = false;
  bool saw_backward = false;
  for (const JoinPath& path : EnumerateJoinPaths(*graph_, publish_,
                                                 options)) {
    const std::string description = path.Describe(*graph_);
    if (description.find("->") != std::string::npos) saw_forward = true;
    if (description.find("<-") != std::string::npos) saw_backward = true;
  }
  EXPECT_TRUE(saw_forward);
  EXPECT_TRUE(saw_backward);
}

TEST_F(JoinPathTest, OrderedByLength) {
  PathEnumerationOptions options;
  options.max_length = 4;
  const auto paths = EnumerateJoinPaths(*graph_, publish_, options);
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].length(), paths[i].length());
  }
}

TEST_F(JoinPathTest, MaxLengthZeroYieldsNothing) {
  PathEnumerationOptions options;
  options.max_length = 0;
  EXPECT_TRUE(EnumerateJoinPaths(*graph_, publish_, options).empty());
}

/// Property sweep: path counts over the promoted DBLP schema match the
/// closed-form expansion (each node's branching is fixed).
class PathCountTest : public ::testing::TestWithParam<int> {};

TEST_P(PathCountTest, PromotedSchemaCounts) {
  Database db = testing_util::MakeMiniDblp();
  auto graph = SchemaGraph::Build(db);
  ASSERT_TRUE(graph.ok());
  for (const auto& [table, column] : DblpDefaultPromotions()) {
    ASSERT_TRUE(graph->PromoteAttribute(table, column).ok());
  }
  PathEnumerationOptions options;
  options.max_length = GetParam();
  const auto paths = EnumerateJoinPaths(
      *graph, *graph->NodeForTable(kPublishTable), options);
  // Known counts for the DBLP schema with 3 promotions, no exclusions:
  // L1: 2, L2: +3, L3: +8, L4: +12.
  const size_t expected[] = {0, 2, 5, 13, 25};
  ASSERT_LE(GetParam(), 4);
  EXPECT_EQ(paths.size(), expected[GetParam()]);
}

INSTANTIATE_TEST_SUITE_P(Lengths, PathCountTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace distinct
