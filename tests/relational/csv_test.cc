#include "relational/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace distinct {
namespace {

Table MakeTable() {
  auto table = Table::Create(
      "People", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
                 ColumnSpec{"name", ColumnType::kString, false, ""},
                 ColumnSpec{"age", ColumnType::kInt64, false, ""}});
  return *std::move(table);
}

TEST(ParseCsvTest, SimpleRecords) {
  auto records = ParseCsv("a,b\n1,2\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0][0].value, "a");
  EXPECT_EQ((*records)[1][1].value, "2");
  EXPECT_FALSE((*records)[0][0].quoted);
}

TEST(ParseCsvTest, QuotedFieldsWithSeparatorsAndNewlines) {
  auto records = ParseCsv("\"a,b\",\"line1\nline2\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0][0].value, "a,b");
  EXPECT_EQ((*records)[0][1].value, "line1\nline2");
  EXPECT_EQ((*records)[0][2].value, "he said \"hi\"");
  EXPECT_TRUE((*records)[0][0].quoted);
}

TEST(ParseCsvTest, EmptyVersusQuotedEmpty) {
  auto records = ParseCsv("x,,\"\"\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ((*records)[0].size(), 3u);
  EXPECT_EQ((*records)[0][1].value, "");
  EXPECT_FALSE((*records)[0][1].quoted);  // NULL
  EXPECT_EQ((*records)[0][2].value, "");
  EXPECT_TRUE((*records)[0][2].quoted);  // empty string
}

TEST(ParseCsvTest, CrLfLineEndings) {
  auto records = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[1][0].value, "1");
}

TEST(ParseCsvTest, CrLfKeepsTrailingField) {
  // The field before the CRLF terminator must survive intact — including
  // when it is the record's last, empty (NULL), or quoted-empty field.
  auto records = ParseCsv("a,b,c\r\nx,,\"\"\r\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  ASSERT_EQ((*records)[1].size(), 3u);
  EXPECT_EQ((*records)[1][0].value, "x");
  EXPECT_EQ((*records)[1][1].value, "");
  EXPECT_FALSE((*records)[1][1].quoted);  // NULL
  EXPECT_TRUE((*records)[1][2].quoted);   // empty string
}

TEST(ParseCsvTest, LoneCarriageReturnIsData) {
  // A '\r' not followed by '\n' (and not at end of input) is field data,
  // not a record terminator; the old parser silently dropped it.
  auto records = ParseCsv("a\rb,c\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0][0].value, "a\rb");
  EXPECT_EQ((*records)[0][1].value, "c");
}

TEST(ParseCsvTest, CarriageReturnAtEndOfInputEndsTheRecord) {
  auto records = ParseCsv("a,b\r");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  ASSERT_EQ((*records)[0].size(), 2u);
  EXPECT_EQ((*records)[0][1].value, "b");
}

TEST(ParseCsvTest, QuotedFieldBeforeCrLf) {
  auto records = ParseCsv("\"x,y\"\r\n\"z\"\r\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0][0].value, "x,y");
  EXPECT_EQ((*records)[1][0].value, "z");
}

TEST(ParseCsvTest, QuotedFieldKeepsEmbeddedCrLf) {
  auto records = ParseCsv("\"line1\r\nline2\",\"tail\rcr\"\r\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0][0].value, "line1\r\nline2");
  EXPECT_EQ((*records)[0][1].value, "tail\rcr");
}

TEST(ParseCsvTest, MissingTrailingNewline) {
  auto records = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST(ParseCsvTest, EmptyInput) {
  auto records = ParseCsv("");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(ParseCsvTest, CustomSeparator) {
  CsvOptions options;
  options.separator = ';';
  auto records = ParseCsv("a;b\n", options);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0].size(), 2u);
}

TEST(ParseCsvTest, Malformed) {
  EXPECT_FALSE(ParseCsv("\"unterminated\n").ok());
  EXPECT_FALSE(ParseCsv("ab\"cd\n").ok());
  EXPECT_FALSE(ParseCsv("\"x\"y\n").ok());
}

TEST(CsvRoundTripTest, TableSurvives) {
  Table table = MakeTable();
  ASSERT_TRUE(
      table.AppendRow({Value::Int(1), Value::Str("Wei Wang"), Value::Int(30)})
          .ok());
  ASSERT_TRUE(table
                  .AppendRow({Value::Int(2), Value::Str("comma, quote\""),
                              Value::Null()})
                  .ok());
  ASSERT_TRUE(
      table.AppendRow({Value::Int(3), Value::Str(""), Value::Int(0)}).ok());

  const std::string csv = TableToCsv(table);
  Table copy = MakeTable();
  auto appended = AppendCsvToTable(csv, copy);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(*appended, 3);

  ASSERT_EQ(copy.num_rows(), 3);
  EXPECT_EQ(copy.GetString(0, 1), "Wei Wang");
  EXPECT_EQ(copy.GetString(1, 1), "comma, quote\"");
  EXPECT_TRUE(copy.IsNull(1, 2));
  EXPECT_EQ(copy.GetString(2, 1), "");
  EXPECT_FALSE(copy.IsNull(2, 1));
  EXPECT_EQ(copy.GetInt(2, 2), 0);
}

TEST(CsvRoundTripTest, CrlfFixtureSurvives) {
  // A table written with Unix newlines must import identically after the
  // file was rewritten with CRLF line endings (values containing CR/LF
  // are quoted by TableToCsv, so only record terminators are rewritten).
  Table table = MakeTable();
  ASSERT_TRUE(table
                  .AppendRow({Value::Int(1), Value::Str("line1\nline2"),
                              Value::Int(30)})
                  .ok());
  ASSERT_TRUE(table
                  .AppendRow({Value::Int(2), Value::Str("cr\rinside"),
                              Value::Null()})
                  .ok());
  ASSERT_TRUE(
      table.AppendRow({Value::Int(3), Value::Str("plain"), Value::Int(7)})
          .ok());

  std::string csv = TableToCsv(table);
  // Rewrite bare record terminators as CRLF (quoted newlines untouched:
  // walk the quoting state like a CRLF-producing writer would).
  std::string crlf;
  bool in_quotes = false;
  for (const char c : csv) {
    if (c == '"') {
      in_quotes = !in_quotes;
    }
    if (c == '\n' && !in_quotes) {
      crlf += '\r';
    }
    crlf += c;
  }

  Table copy = MakeTable();
  auto appended = AppendCsvToTable(crlf, copy);
  ASSERT_TRUE(appended.ok());
  ASSERT_EQ(*appended, 3);
  EXPECT_EQ(copy.GetString(0, 1), "line1\nline2");
  EXPECT_EQ(copy.GetString(1, 1), "cr\rinside");
  EXPECT_TRUE(copy.IsNull(1, 2));
  EXPECT_EQ(copy.GetString(2, 1), "plain");
  EXPECT_EQ(copy.GetInt(2, 2), 7);
}

TEST(CsvImportTest, HeaderValidation) {
  Table table = MakeTable();
  EXPECT_FALSE(AppendCsvToTable("", table).ok());
  EXPECT_FALSE(AppendCsvToTable("id,name\n", table).ok());
  EXPECT_FALSE(AppendCsvToTable("id,wrong,age\n", table).ok());
  EXPECT_TRUE(AppendCsvToTable("id,name,age\n", table).ok());
  EXPECT_EQ(table.num_rows(), 0);
}

TEST(CsvImportTest, TypeErrors) {
  Table table = MakeTable();
  EXPECT_FALSE(
      AppendCsvToTable("id,name,age\nnot_a_number,x,1\n", table).ok());
  EXPECT_FALSE(AppendCsvToTable("id,name,age\n1,x\n", table).ok());
}

TEST(CsvImportTest, NullPrimaryKeyRejected) {
  Table table = MakeTable();
  EXPECT_FALSE(AppendCsvToTable("id,name,age\n,x,1\n", table).ok());
}

TEST(CsvFileTest, SaveAndLoad) {
  Table table = MakeTable();
  ASSERT_TRUE(
      table.AppendRow({Value::Int(7), Value::Str("a"), Value::Int(1)}).ok());
  const std::string path = ::testing::TempDir() + "/csv_test.csv";
  ASSERT_TRUE(SaveTableCsv(table, path).ok());
  Table copy = MakeTable();
  auto loaded = LoadTableCsv(path, copy);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1);
  EXPECT_EQ(copy.GetInt(0, 0), 7);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFile) {
  Table table = MakeTable();
  EXPECT_EQ(LoadTableCsv("/no/such.csv", table).status().code(),
            StatusCode::kNotFound);
}

TEST(CsvDatabaseTest, WholeDatabaseRoundTrip) {
  Database db;
  auto people = Table::Create(
      "people", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
                 ColumnSpec{"name", ColumnType::kString, false, ""}});
  ASSERT_TRUE(people->AppendRow({Value::Int(0), Value::Str("a")}).ok());
  ASSERT_TRUE(db.AddTable(*std::move(people)).ok());
  auto pets = Table::Create(
      "pets", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
               ColumnSpec{"owner", ColumnType::kInt64, false, "people"}});
  ASSERT_TRUE(pets->AppendRow({Value::Int(0), Value::Int(0)}).ok());
  ASSERT_TRUE(pets->AppendRow({Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(db.AddTable(*std::move(pets)).ok());

  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveDatabaseCsv(db, dir).ok());

  Database copy;
  auto people2 = Table::Create(
      "people", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
                 ColumnSpec{"name", ColumnType::kString, false, ""}});
  ASSERT_TRUE(copy.AddTable(*std::move(people2)).ok());
  auto pets2 = Table::Create(
      "pets", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
               ColumnSpec{"owner", ColumnType::kInt64, false, "people"}});
  ASSERT_TRUE(copy.AddTable(*std::move(pets2)).ok());

  ASSERT_TRUE(LoadDatabaseCsv(copy, dir).ok());
  EXPECT_EQ(copy.table(0).num_rows(), 1);
  EXPECT_EQ(copy.table(1).num_rows(), 2);
  EXPECT_TRUE(copy.table(1).IsNull(1, 1));
  EXPECT_TRUE(copy.ValidateIntegrity().ok());
  std::remove((dir + "/people.csv").c_str());
  std::remove((dir + "/pets.csv").c_str());
}

TEST(CsvDatabaseTest, MissingTableFileFails) {
  Database db;
  auto lonely = Table::Create(
      "no_such_csv_file", {ColumnSpec{"id", ColumnType::kInt64, true, ""}});
  ASSERT_TRUE(db.AddTable(*std::move(lonely)).ok());
  EXPECT_FALSE(LoadDatabaseCsv(db, ::testing::TempDir()).ok());
}

}  // namespace
}  // namespace distinct
