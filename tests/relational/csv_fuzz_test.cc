// Property test: random tables with hostile string content survive a
// CSV round trip bit-for-bit.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/csv.h"

namespace distinct {
namespace {

std::string RandomCell(Rng& rng) {
  static constexpr char kAlphabet[] =
      "abcXYZ019 ,\"\n\r\t;'#\\|";
  const int length = static_cast<int>(rng.UniformInt(0, 12));
  std::string out;
  for (int i = 0; i < length; ++i) {
    out += kAlphabet[rng.UniformInt(0, sizeof(kAlphabet) - 2)];
  }
  return out;
}

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, RandomTablesRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    auto make_table = [] {
      return *Table::Create(
          "fuzz", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
                   ColumnSpec{"text", ColumnType::kString, false, ""},
                   ColumnSpec{"num", ColumnType::kInt64, false, ""},
                   ColumnSpec{"more", ColumnType::kString, false, ""}});
    };
    Table table = make_table();
    const int rows = static_cast<int>(rng.UniformInt(0, 25));
    for (int r = 0; r < rows; ++r) {
      std::vector<Value> row;
      row.push_back(Value::Int(r));
      row.push_back(rng.Bernoulli(0.15) ? Value::Null()
                                        : Value::Str(RandomCell(rng)));
      row.push_back(rng.Bernoulli(0.15)
                        ? Value::Null()
                        : Value::Int(rng.UniformInt(-1000000, 1000000)));
      row.push_back(rng.Bernoulli(0.15) ? Value::Null()
                                        : Value::Str(RandomCell(rng)));
      ASSERT_TRUE(table.AppendRow(row).ok());
    }

    const std::string csv = TableToCsv(table);
    Table copy = make_table();
    auto appended = AppendCsvToTable(csv, copy);
    ASSERT_TRUE(appended.ok()) << appended.status().ToString();
    ASSERT_EQ(*appended, table.num_rows());
    for (int64_t r = 0; r < table.num_rows(); ++r) {
      for (int c = 0; c < table.num_columns(); ++c) {
        EXPECT_EQ(table.GetValue(r, c), copy.GetValue(r, c))
            << "seed " << GetParam() << " trial " << trial << " cell ("
            << r << "," << c << ")";
      }
    }
    // A second round trip is also stable (canonical form).
    EXPECT_EQ(TableToCsv(copy), csv);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Values(1, 2, 3, 50, 6000));

}  // namespace
}  // namespace distinct
