#include "relational/reference_spec.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace distinct {
namespace {

TEST(ReferenceSpecTest, ResolvesDblpSpec) {
  Database db = testing_util::MakeMiniDblp();
  auto resolved = ResolveReferenceSpec(db, DblpReferenceSpec());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->reference_table_id, *db.TableId(kPublishTable));
  EXPECT_EQ(resolved->name_table_id, *db.TableId(kAuthorsTable));
  EXPECT_EQ(db.table(resolved->reference_table_id)
                .column(resolved->identity_column)
                .name,
            "author_id");
  EXPECT_EQ(
      db.table(resolved->name_table_id).column(resolved->name_column).name,
      "name");
}

TEST(ReferenceSpecTest, MissingTablesFail) {
  Database db = testing_util::MakeMiniDblp();
  ReferenceSpec spec = DblpReferenceSpec();
  spec.reference_table = "Nope";
  EXPECT_EQ(ResolveReferenceSpec(db, spec).status().code(),
            StatusCode::kNotFound);

  spec = DblpReferenceSpec();
  spec.name_table = "Nope";
  EXPECT_FALSE(ResolveReferenceSpec(db, spec).ok());
}

TEST(ReferenceSpecTest, MissingColumnsFail) {
  Database db = testing_util::MakeMiniDblp();
  ReferenceSpec spec = DblpReferenceSpec();
  spec.identity_column = "nope";
  EXPECT_FALSE(ResolveReferenceSpec(db, spec).ok());

  spec = DblpReferenceSpec();
  spec.name_column = "nope";
  EXPECT_FALSE(ResolveReferenceSpec(db, spec).ok());
}

TEST(ReferenceSpecTest, IdentityMustBeFkToNameTable) {
  Database db = testing_util::MakeMiniDblp();
  ReferenceSpec spec = DblpReferenceSpec();
  spec.identity_column = "paper_id";  // FK, but to the wrong table
  const auto resolved = ResolveReferenceSpec(db, spec);
  EXPECT_EQ(resolved.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReferenceSpecTest, NameColumnMustBeString) {
  Database db = testing_util::MakeMiniDblp();
  ReferenceSpec spec = DblpReferenceSpec();
  spec.name_column = "author_id";
  EXPECT_FALSE(ResolveReferenceSpec(db, spec).ok());
}

}  // namespace
}  // namespace distinct
