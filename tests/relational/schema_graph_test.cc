#include "relational/schema_graph.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace distinct {
namespace {

TEST(SchemaGraphTest, BuildsNodesForEveryTable) {
  Database db = testing_util::MakeMiniDblp();
  auto graph = SchemaGraph::Build(db);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), db.num_tables());
  for (int t = 0; t < db.num_tables(); ++t) {
    EXPECT_EQ(graph->node(t).name, db.table(t).name());
    EXPECT_FALSE(graph->node(t).is_attribute);
  }
}

TEST(SchemaGraphTest, BuildsEdgesForEveryForeignKey) {
  Database db = testing_util::MakeMiniDblp();
  auto graph = SchemaGraph::Build(db);
  ASSERT_TRUE(graph.ok());
  // Publish.author_id, Publish.paper_id, Publications.proc_id,
  // Proceedings.conf_id.
  EXPECT_EQ(graph->num_edges(), 4);
}

TEST(SchemaGraphTest, EdgeEndpointsAreCorrect) {
  Database db = testing_util::MakeMiniDblp();
  auto graph = SchemaGraph::Build(db);
  ASSERT_TRUE(graph.ok());
  const int publish = *graph->NodeForTable(kPublishTable);
  const int authors = *graph->NodeForTable(kAuthorsTable);
  bool found = false;
  for (int e = 0; e < graph->num_edges(); ++e) {
    const SchemaEdge& edge = graph->edge(e);
    if (edge.from_node == publish && edge.to_node == authors) {
      found = true;
      EXPECT_EQ(edge.table_id, publish);
      EXPECT_FALSE(edge.is_attribute_edge);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SchemaGraphTest, IncidentListsBothDirections) {
  Database db = testing_util::MakeMiniDblp();
  auto graph = SchemaGraph::Build(db);
  ASSERT_TRUE(graph.ok());
  const int publish = *graph->NodeForTable(kPublishTable);
  const int authors = *graph->NodeForTable(kAuthorsTable);
  // Publish has two outgoing FKs, nothing references Publish.
  EXPECT_EQ(graph->incident(publish).size(), 2u);
  // Authors has one incoming edge.
  ASSERT_EQ(graph->incident(authors).size(), 1u);
  EXPECT_FALSE(graph->incident(authors)[0].forward);
}

TEST(SchemaGraphTest, TraverseFollowsDirections) {
  Database db = testing_util::MakeMiniDblp();
  auto graph = SchemaGraph::Build(db);
  ASSERT_TRUE(graph.ok());
  const int publish = *graph->NodeForTable(kPublishTable);
  for (const IncidentEdge& incident : graph->incident(publish)) {
    const int neighbor = graph->Traverse(publish, incident);
    EXPECT_NE(neighbor, publish);
    // Round trip.
    EXPECT_EQ(graph->Traverse(neighbor,
                              IncidentEdge{incident.edge_id,
                                           !incident.forward}),
              publish);
  }
}

TEST(SchemaGraphTest, PromoteAttributeAddsNodeAndEdge) {
  Database db = testing_util::MakeMiniDblp();
  auto graph = SchemaGraph::Build(db);
  ASSERT_TRUE(graph.ok());
  const int nodes_before = graph->num_nodes();
  const int edges_before = graph->num_edges();
  ASSERT_TRUE(graph->PromoteAttribute(kConferencesTable, "publisher").ok());
  EXPECT_EQ(graph->num_nodes(), nodes_before + 1);
  EXPECT_EQ(graph->num_edges(), edges_before + 1);
  const SchemaNode& node = graph->node(nodes_before);
  EXPECT_TRUE(node.is_attribute);
  EXPECT_EQ(node.name, "Conferences.publisher");
  const SchemaEdge& edge = graph->edge(edges_before);
  EXPECT_TRUE(edge.is_attribute_edge);
  EXPECT_EQ(edge.to_node, node.id);
}

TEST(SchemaGraphTest, PromoteIsIdempotent) {
  Database db = testing_util::MakeMiniDblp();
  auto graph = SchemaGraph::Build(db);
  ASSERT_TRUE(graph->PromoteAttribute(kProceedingsTable, "year").ok());
  const int nodes = graph->num_nodes();
  ASSERT_TRUE(graph->PromoteAttribute(kProceedingsTable, "year").ok());
  EXPECT_EQ(graph->num_nodes(), nodes);
}

TEST(SchemaGraphTest, PromoteRejectsKeys) {
  Database db = testing_util::MakeMiniDblp();
  auto graph = SchemaGraph::Build(db);
  EXPECT_FALSE(graph->PromoteAttribute(kProceedingsTable, "proc_id").ok());
  EXPECT_FALSE(graph->PromoteAttribute(kProceedingsTable, "conf_id").ok());
  EXPECT_FALSE(graph->PromoteAttribute(kProceedingsTable, "missing").ok());
  EXPECT_FALSE(graph->PromoteAttribute("NoSuchTable", "year").ok());
}

TEST(SchemaGraphTest, PromotedIntAttributeWorks) {
  Database db = testing_util::MakeMiniDblp();
  auto graph = SchemaGraph::Build(db);
  EXPECT_TRUE(graph->PromoteAttribute(kProceedingsTable, "year").ok());
}

TEST(SchemaGraphTest, DebugStringMentionsEverything) {
  Database db = testing_util::MakeMiniDblp();
  auto graph = SchemaGraph::Build(db);
  ASSERT_TRUE(graph->PromoteAttribute(kConferencesTable, "publisher").ok());
  const std::string debug = graph->DebugString();
  EXPECT_NE(debug.find("Publish"), std::string::npos);
  EXPECT_NE(debug.find("Conferences.publisher"), std::string::npos);
  EXPECT_NE(debug.find("(attribute)"), std::string::npos);
}

TEST(SchemaGraphTest, FkToTableWithoutPkFails) {
  Database db;
  auto no_pk = Table::Create(
      "no_pk", {ColumnSpec{"v", ColumnType::kInt64, false, ""}});
  ASSERT_TRUE(db.AddTable(*std::move(no_pk)).ok());
  auto referrer = Table::Create(
      "referrer", {ColumnSpec{"id", ColumnType::kInt64, true, ""},
                   ColumnSpec{"fk", ColumnType::kInt64, false, "no_pk"}});
  ASSERT_TRUE(db.AddTable(*std::move(referrer)).ok());
  EXPECT_FALSE(SchemaGraph::Build(db).ok());
}

}  // namespace
}  // namespace distinct
