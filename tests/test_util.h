// Shared test fixtures: a hand-built miniature DBLP database (modeled on
// the paper's Fig. 1) whose propagation probabilities are small enough to
// verify by hand.

#ifndef DISTINCT_TESTS_TEST_UTIL_H_
#define DISTINCT_TESTS_TEST_UTIL_H_

#include "common/logging.h"
#include "dblp/schema.h"
#include "relational/database.h"

namespace distinct {
namespace testing_util {

/// Author rows in the mini database.
inline constexpr int64_t kWeiWang = 0;
inline constexpr int64_t kJiongYang = 1;
inline constexpr int64_t kJianPei = 2;
inline constexpr int64_t kHaixunWang = 3;
inline constexpr int64_t kAidongZhang = 4;

/// Publish rows that are "Wei Wang" references.
inline constexpr int32_t kWeiWangRef0 = 0;  // paper 0 (VLDB 1997)
inline constexpr int32_t kWeiWangRef1 = 2;  // paper 1 (SIGMOD 2002)
inline constexpr int32_t kWeiWangRef2 = 6;  // paper 2 (ICDE 2001)

/// Builds:
///   Authors: Wei Wang, Jiong Yang, Jian Pei, Haixun Wang, Aidong Zhang
///   Conferences: VLDB(P1), SIGMOD(P1), ICDE(P2)
///   Proceedings: (VLDB,1997,CityA), (SIGMOD,2002,CityB), (ICDE,2001,CityA)
///   Publications: paper0@VLDB97, paper1@SIGMOD02, paper2@ICDE01
///   Publish: p0:{WW, JY}, p1:{WW, HW, JY}, p2:{JP, WW}
/// Wei Wang has three references (rows 0, 2, 6).
inline Database MakeMiniDblp() {
  auto db_or = MakeEmptyDblpDatabase();
  DISTINCT_CHECK(db_or.ok());
  Database db = *std::move(db_or);

  Table* authors = *db.FindMutableTable(kAuthorsTable);
  const char* names[] = {"Wei Wang", "Jiong Yang", "Jian Pei",
                         "Haixun Wang", "Aidong Zhang"};
  for (int64_t i = 0; i < 5; ++i) {
    DISTINCT_CHECK(
        authors->AppendRow({Value::Int(i), Value::Str(names[i])}).ok());
  }

  Table* conferences = *db.FindMutableTable(kConferencesTable);
  DISTINCT_CHECK(conferences
                     ->AppendRow({Value::Int(0), Value::Str("VLDB"),
                                  Value::Str("P1")})
                     .ok());
  DISTINCT_CHECK(conferences
                     ->AppendRow({Value::Int(1), Value::Str("SIGMOD"),
                                  Value::Str("P1")})
                     .ok());
  DISTINCT_CHECK(conferences
                     ->AppendRow({Value::Int(2), Value::Str("ICDE"),
                                  Value::Str("P2")})
                     .ok());

  Table* proceedings = *db.FindMutableTable(kProceedingsTable);
  DISTINCT_CHECK(proceedings
                     ->AppendRow({Value::Int(0), Value::Int(0),
                                  Value::Int(1997), Value::Str("CityA")})
                     .ok());
  DISTINCT_CHECK(proceedings
                     ->AppendRow({Value::Int(1), Value::Int(1),
                                  Value::Int(2002), Value::Str("CityB")})
                     .ok());
  DISTINCT_CHECK(proceedings
                     ->AppendRow({Value::Int(2), Value::Int(2),
                                  Value::Int(2001), Value::Str("CityA")})
                     .ok());

  Table* publications = *db.FindMutableTable(kPublicationsTable);
  for (int64_t p = 0; p < 3; ++p) {
    DISTINCT_CHECK(
        publications
            ->AppendRow({Value::Int(p),
                         Value::Str("Paper " + std::to_string(p)),
                         Value::Int(p)})
            .ok());
  }

  Table* publish = *db.FindMutableTable(kPublishTable);
  const int64_t rows[][2] = {
      {kWeiWang, 0}, {kJiongYang, 0},                    // paper 0
      {kWeiWang, 1}, {kHaixunWang, 1}, {kJiongYang, 1},  // paper 1
      {kJianPei, 2}, {kWeiWang, 2},                      // paper 2
  };
  for (int64_t i = 0; i < 7; ++i) {
    DISTINCT_CHECK(publish
                       ->AppendRow({Value::Int(i), Value::Int(rows[i][0]),
                                    Value::Int(rows[i][1])})
                       .ok());
  }
  DISTINCT_CHECK(db.ValidateIntegrity().ok());
  return db;
}

}  // namespace testing_util
}  // namespace distinct

#endif  // DISTINCT_TESTS_TEST_UTIL_H_
