#include "train/training_set.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "dblp/generator.h"
#include "dblp/schema.h"

namespace distinct {
namespace {

GeneratorConfig SmallWorld(uint64_t seed = 5) {
  GeneratorConfig config;
  config.seed = seed;
  config.num_communities = 10;
  config.authors_per_community = 20;
  config.ambiguous = {{"Wei Wang", 3, 15}};
  return config;
}

TrainingSetOptions SmallOptions() {
  TrainingSetOptions options;
  options.num_positive = 50;
  options.num_negative = 50;
  return options;
}

class TrainingSetTest : public ::testing::Test {
 protected:
  TrainingSetTest() {
    auto dataset = GenerateDblpDataset(SmallWorld());
    DISTINCT_CHECK(dataset.ok());
    dataset_ = std::make_unique<DblpDataset>(*std::move(dataset));
  }

  std::unique_ptr<DblpDataset> dataset_;
};

TEST_F(TrainingSetTest, ProducesRequestedCounts) {
  auto pairs =
      BuildTrainingSet(dataset_->db, DblpReferenceSpec(), SmallOptions());
  ASSERT_TRUE(pairs.ok());
  int positives = 0;
  int negatives = 0;
  for (const TrainingPair& pair : *pairs) {
    if (pair.label == 1) ++positives;
    if (pair.label == -1) ++negatives;
  }
  EXPECT_EQ(positives, 50);
  EXPECT_EQ(negatives, 50);
}

TEST_F(TrainingSetTest, LabelsAreActuallyCorrect) {
  // The generator's global truth lets us check the heuristic's labels.
  auto pairs =
      BuildTrainingSet(dataset_->db, DblpReferenceSpec(), SmallOptions());
  ASSERT_TRUE(pairs.ok());
  int correct = 0;
  for (const TrainingPair& pair : *pairs) {
    const int e1 =
        dataset_->entity_of_publish_row[static_cast<size_t>(pair.ref1)];
    const int e2 =
        dataset_->entity_of_publish_row[static_cast<size_t>(pair.ref2)];
    const int truth = (e1 == e2) ? 1 : -1;
    if (truth == pair.label) {
      ++correct;
    }
  }
  // The rare-name heuristic is allowed a little noise (two rare-name
  // entities may share a name by chance), but must be near-perfect.
  EXPECT_GT(correct, 95);
}

TEST_F(TrainingSetTest, PairsAreDistinctReferences) {
  auto pairs =
      BuildTrainingSet(dataset_->db, DblpReferenceSpec(), SmallOptions());
  ASSERT_TRUE(pairs.ok());
  for (const TrainingPair& pair : *pairs) {
    EXPECT_NE(pair.ref1, pair.ref2);
    EXPECT_GE(pair.ref1, 0);
    EXPECT_GE(pair.ref2, 0);
  }
}

TEST_F(TrainingSetTest, DeterministicForSeed) {
  auto a = BuildTrainingSet(dataset_->db, DblpReferenceSpec(),
                            SmallOptions());
  auto b = BuildTrainingSet(dataset_->db, DblpReferenceSpec(),
                            SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].ref1, (*b)[i].ref1);
    EXPECT_EQ((*a)[i].ref2, (*b)[i].ref2);
    EXPECT_EQ((*a)[i].label, (*b)[i].label);
  }
}

TEST_F(TrainingSetTest, SeedChangesSampling) {
  TrainingSetOptions options = SmallOptions();
  options.seed = 1;
  auto a = BuildTrainingSet(dataset_->db, DblpReferenceSpec(), options);
  options.seed = 2;
  auto b = BuildTrainingSet(dataset_->db, DblpReferenceSpec(), options);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_difference = false;
  for (size_t i = 0; i < a->size(); ++i) {
    if ((*a)[i].ref1 != (*b)[i].ref1 || (*a)[i].ref2 != (*b)[i].ref2) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(TrainingSetTest, NoAuthorDominatesPositives) {
  TrainingSetOptions options = SmallOptions();
  options.max_pairs_per_author = 3;
  auto pairs = BuildTrainingSet(dataset_->db, DblpReferenceSpec(), options);
  ASSERT_TRUE(pairs.ok());
  // Count positive pairs per (entity of ref1); cap respected.
  std::map<int, int> per_entity;
  for (const TrainingPair& pair : *pairs) {
    if (pair.label == 1) {
      ++per_entity[dataset_->entity_of_publish_row[static_cast<size_t>(
          pair.ref1)]];
    }
  }
  for (const auto& [entity, count] : per_entity) {
    EXPECT_LE(count, 3);
  }
}

TEST_F(TrainingSetTest, AmbiguousNamesNeverUsedForTraining) {
  auto pairs =
      BuildTrainingSet(dataset_->db, DblpReferenceSpec(), SmallOptions());
  ASSERT_TRUE(pairs.ok());
  std::set<int32_t> ambiguous_rows(
      dataset_->cases[0].publish_rows.begin(),
      dataset_->cases[0].publish_rows.end());
  for (const TrainingPair& pair : *pairs) {
    EXPECT_FALSE(ambiguous_rows.contains(pair.ref1));
    EXPECT_FALSE(ambiguous_rows.contains(pair.ref2));
  }
}

TEST(TrainingSetErrorTest, FailsOnTinyDatabase) {
  auto db = MakeEmptyDblpDatabase();
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(
      BuildTrainingSet(*db, DblpReferenceSpec(), TrainingSetOptions{}).ok());
}

TEST(TrainingSetErrorTest, FailsWhenTooFewPositivesExist) {
  GeneratorConfig config;
  config.seed = 9;
  config.num_communities = 2;
  config.authors_per_community = 4;
  config.ambiguous = {{"Wei Wang", 2, 6}};
  auto dataset = GenerateDblpDataset(config);
  ASSERT_TRUE(dataset.ok());
  TrainingSetOptions options;
  options.num_positive = 100000;
  options.num_negative = 10;
  EXPECT_FALSE(
      BuildTrainingSet(dataset->db, DblpReferenceSpec(), options).ok());
}

}  // namespace
}  // namespace distinct
