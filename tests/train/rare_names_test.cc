#include "train/rare_names.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dblp/generator.h"
#include "dblp/schema.h"

namespace distinct {
namespace {

/// Hand-built database where rarity is controlled exactly.
Database MakeControlledDb() {
  auto db = MakeEmptyDblpDatabase();
  DISTINCT_CHECK(db.ok());
  Table* authors = *db->FindMutableTable(kAuthorsTable);
  // "John" appears 3x as a first name, "Smith" 3x as a last name.
  // "Zelda Quux" is rare-rare; "Zorro Quibble" is rare-rare with one ref.
  const char* names[] = {
      "John Smith", "John Miller", "John Brown",   // common first
      "Ann Smith",  "Eve Smith",                   // common last
      "Zelda Quux", "Zorro Quibble",
  };
  for (int64_t i = 0; i < 7; ++i) {
    DISTINCT_CHECK(
        authors->AppendRow({Value::Int(i), Value::Str(names[i])}).ok());
  }
  // Papers/venues: one conference, one proceedings, papers 0..9.
  Table* conferences = *db->FindMutableTable(kConferencesTable);
  DISTINCT_CHECK(conferences
                     ->AppendRow({Value::Int(0), Value::Str("C"),
                                  Value::Str("P")})
                     .ok());
  Table* proceedings = *db->FindMutableTable(kProceedingsTable);
  DISTINCT_CHECK(proceedings
                     ->AppendRow({Value::Int(0), Value::Int(0),
                                  Value::Int(2000), Value::Str("L")})
                     .ok());
  Table* publications = *db->FindMutableTable(kPublicationsTable);
  for (int64_t p = 0; p < 10; ++p) {
    DISTINCT_CHECK(publications
                       ->AppendRow({Value::Int(p), Value::Str("T"),
                                    Value::Int(0)})
                       .ok());
  }
  Table* publish = *db->FindMutableTable(kPublishTable);
  // Refs: Zelda Quux on 3 papers, Zorro Quibble on 1, John Smith on 2.
  const int64_t rows[][2] = {
      {5, 0}, {5, 1}, {5, 2},  // Zelda
      {6, 3},                  // Zorro
      {0, 4}, {0, 5},          // John Smith
  };
  for (int64_t i = 0; i < 6; ++i) {
    DISTINCT_CHECK(publish
                       ->AppendRow({Value::Int(i), Value::Int(rows[i][0]),
                                    Value::Int(rows[i][1])})
                       .ok());
  }
  return *std::move(db);
}

TEST(RareNamesTest, FindsOnlyRareRareNamesWithEnoughRefs) {
  Database db = MakeControlledDb();
  RareNameOptions options;
  options.max_first_name_count = 1;
  options.max_last_name_count = 1;
  options.min_refs = 2;
  auto index = RareNameIndex::Build(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(index.ok());
  // Zelda Quux qualifies (rare+rare, 3 refs). Zorro has only 1 ref.
  // John Smith is common+common.
  ASSERT_EQ(index->unique_authors().size(), 1u);
  EXPECT_EQ(index->unique_authors()[0].name, "Zelda Quux");
  EXPECT_EQ(index->unique_authors()[0].publish_rows.size(), 3u);
  EXPECT_EQ(index->names_scanned(), 7);
}

TEST(RareNamesTest, ThresholdsControlSelection) {
  Database db = MakeControlledDb();
  RareNameOptions options;
  options.max_first_name_count = 3;  // now "John" counts as rare enough
  options.max_last_name_count = 3;
  options.min_refs = 2;
  auto index = RareNameIndex::Build(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(index.ok());
  // John Smith (2 refs) now qualifies alongside Zelda Quux.
  EXPECT_EQ(index->unique_authors().size(), 2u);
}

TEST(RareNamesTest, MinRefsFiltersShortAuthors) {
  Database db = MakeControlledDb();
  RareNameOptions options;
  options.max_first_name_count = 1;
  options.max_last_name_count = 1;
  options.min_refs = 1;
  auto index = RareNameIndex::Build(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(index.ok());
  // Zorro Quibble (1 ref) now included.
  EXPECT_EQ(index->unique_authors().size(), 2u);
}

TEST(RareNamesTest, MaxRefsExcludesSuspiciouslyProlific) {
  Database db = MakeControlledDb();
  RareNameOptions options;
  options.max_first_name_count = 1;
  options.max_last_name_count = 1;
  options.min_refs = 2;
  options.max_refs = 2;  // Zelda has 3
  auto index = RareNameIndex::Build(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->unique_authors().empty());
}

/// Like MakeControlledDb but with caller-chosen names: each author i gets
/// `refs_per_author[i]` publish rows.
Database MakeDbWithNames(const std::vector<std::string>& names,
                         const std::vector<int>& refs_per_author) {
  auto db = MakeEmptyDblpDatabase();
  DISTINCT_CHECK(db.ok());
  Table* authors = *db->FindMutableTable(kAuthorsTable);
  for (size_t i = 0; i < names.size(); ++i) {
    DISTINCT_CHECK(authors
                       ->AppendRow({Value::Int(static_cast<int64_t>(i)),
                                    Value::Str(names[i])})
                       .ok());
  }
  Table* conferences = *db->FindMutableTable(kConferencesTable);
  DISTINCT_CHECK(
      conferences->AppendRow({Value::Int(0), Value::Str("C"), Value::Str("P")})
          .ok());
  Table* proceedings = *db->FindMutableTable(kProceedingsTable);
  DISTINCT_CHECK(proceedings
                     ->AppendRow({Value::Int(0), Value::Int(0),
                                  Value::Int(2000), Value::Str("L")})
                     .ok());
  Table* publications = *db->FindMutableTable(kPublicationsTable);
  Table* publish = *db->FindMutableTable(kPublishTable);
  int64_t next_pub = 0;
  for (size_t i = 0; i < refs_per_author.size(); ++i) {
    for (int r = 0; r < refs_per_author[i]; ++r) {
      DISTINCT_CHECK(publications
                         ->AppendRow({Value::Int(next_pub), Value::Str("T"),
                                      Value::Int(0)})
                         .ok());
      DISTINCT_CHECK(publish
                         ->AppendRow({Value::Int(next_pub),
                                      Value::Int(static_cast<int64_t>(i)),
                                      Value::Int(next_pub)})
                         .ok());
      ++next_pub;
    }
  }
  return *std::move(db);
}

/// Regression: single-token, empty, and whitespace-only names must neither
/// crash the scan nor be selected as likely-unique (the first/last rarity
/// heuristic needs two distinct parts), while normal rare-rare names around
/// them still qualify.
TEST(RareNamesTest, SingleTokenAndEmptyNamesAreSkippedSafely) {
  Database db = MakeDbWithNames({"Madonna", "", "   ", "Zelda Quux"},
                                {2, 1, 1, 2});
  RareNameOptions options;
  options.max_first_name_count = 1;
  options.max_last_name_count = 1;
  options.min_refs = 1;
  auto index = RareNameIndex::Build(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->unique_authors().size(), 1u);
  EXPECT_EQ(index->unique_authors()[0].name, "Zelda Quux");
  EXPECT_EQ(index->names_scanned(), 4);
}

/// Regression: a single-token name counts toward the part frequencies once
/// per map, not twice. "Madonna" appears as a first part on two rows (the
/// bare name and "Madonna Quux"); with max_first_name_count = 2 the
/// two-token author must still qualify — it would not if the bare name were
/// double-counted.
TEST(RareNamesTest, SingleTokenNameCountsOncePerPartMap) {
  Database db = MakeDbWithNames({"Madonna", "Madonna Quux"}, {0, 1});
  RareNameOptions options;
  options.max_first_name_count = 2;
  options.max_last_name_count = 1;
  options.min_refs = 1;
  auto index = RareNameIndex::Build(db, DblpReferenceSpec(), options);
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->unique_authors().size(), 1u);
  EXPECT_EQ(index->unique_authors()[0].name, "Madonna Quux");
  EXPECT_EQ(index->unique_authors()[0].publish_rows.size(), 1u);
}

TEST(RareNamesTest, GeneratedDatabaseYieldsManyUniqueAuthors) {
  GeneratorConfig config;
  config.seed = 3;
  config.num_communities = 10;
  config.authors_per_community = 20;
  config.ambiguous = {{"Wei Wang", 3, 12}};
  auto dataset = GenerateDblpDataset(config);
  ASSERT_TRUE(dataset.ok());
  auto index = RareNameIndex::Build(dataset->db, DblpReferenceSpec());
  ASSERT_TRUE(index.ok());
  EXPECT_GT(index->unique_authors().size(), 10u);
  // The planted ambiguous name must never be selected as "unique": its
  // parts are real names, absent from the synthetic pools, but check
  // directly for robustness.
  for (const UniqueAuthor& author : index->unique_authors()) {
    EXPECT_NE(author.name, "Wei Wang");
  }
}

}  // namespace
}  // namespace distinct
