file(REMOVE_RECURSE
  "CMakeFiles/relational_test.dir/relational/csv_fuzz_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/csv_fuzz_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/csv_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/csv_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/database_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/database_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/join_path_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/join_path_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/reference_spec_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/reference_spec_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/schema_graph_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/schema_graph_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/table_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/table_test.cc.o.d"
  "relational_test"
  "relational_test.pdb"
  "relational_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
