file(REMOVE_RECURSE
  "CMakeFiles/dblp_test.dir/dblp/dataset_io_test.cc.o"
  "CMakeFiles/dblp_test.dir/dblp/dataset_io_test.cc.o.d"
  "CMakeFiles/dblp_test.dir/dblp/generator_structure_test.cc.o"
  "CMakeFiles/dblp_test.dir/dblp/generator_structure_test.cc.o.d"
  "CMakeFiles/dblp_test.dir/dblp/generator_test.cc.o"
  "CMakeFiles/dblp_test.dir/dblp/generator_test.cc.o.d"
  "CMakeFiles/dblp_test.dir/dblp/name_pool_test.cc.o"
  "CMakeFiles/dblp_test.dir/dblp/name_pool_test.cc.o.d"
  "CMakeFiles/dblp_test.dir/dblp/schema_test.cc.o"
  "CMakeFiles/dblp_test.dir/dblp/schema_test.cc.o.d"
  "CMakeFiles/dblp_test.dir/dblp/stats_test.cc.o"
  "CMakeFiles/dblp_test.dir/dblp/stats_test.cc.o.d"
  "CMakeFiles/dblp_test.dir/dblp/xml_loader_test.cc.o"
  "CMakeFiles/dblp_test.dir/dblp/xml_loader_test.cc.o.d"
  "dblp_test"
  "dblp_test.pdb"
  "dblp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
