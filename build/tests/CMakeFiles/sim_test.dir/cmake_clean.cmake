file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/feature_vector_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/feature_vector_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/resemblance_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/resemblance_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/similarity_model_io_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/similarity_model_io_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/similarity_model_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/similarity_model_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/walk_probability_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/walk_probability_test.cc.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
