file(REMOVE_RECURSE
  "CMakeFiles/music_test.dir/music/catalog_test.cc.o"
  "CMakeFiles/music_test.dir/music/catalog_test.cc.o.d"
  "music_test"
  "music_test.pdb"
  "music_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
