file(REMOVE_RECURSE
  "CMakeFiles/prop_test.dir/prop/levelwise_test.cc.o"
  "CMakeFiles/prop_test.dir/prop/levelwise_test.cc.o.d"
  "CMakeFiles/prop_test.dir/prop/link_graph_test.cc.o"
  "CMakeFiles/prop_test.dir/prop/link_graph_test.cc.o.d"
  "CMakeFiles/prop_test.dir/prop/profile_test.cc.o"
  "CMakeFiles/prop_test.dir/prop/profile_test.cc.o.d"
  "CMakeFiles/prop_test.dir/prop/propagation_test.cc.o"
  "CMakeFiles/prop_test.dir/prop/propagation_test.cc.o.d"
  "prop_test"
  "prop_test.pdb"
  "prop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
