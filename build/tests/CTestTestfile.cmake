# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/block_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/dblp_test[1]_include.cmake")
include("/root/repo/build/tests/music_test[1]_include.cmake")
include("/root/repo/build/tests/prop_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/svm_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
