# Empty dependencies file for bench_ablation_stopping.
# This may be replaced when dependencies are built.
