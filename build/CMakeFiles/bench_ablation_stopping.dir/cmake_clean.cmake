file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stopping.dir/bench/bench_ablation_stopping.cpp.o"
  "CMakeFiles/bench_ablation_stopping.dir/bench/bench_ablation_stopping.cpp.o.d"
  "CMakeFiles/bench_ablation_stopping.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_ablation_stopping.dir/bench/bench_util.cc.o.d"
  "bench/bench_ablation_stopping"
  "bench/bench_ablation_stopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
