file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_comparison.dir/bench/bench_fig4_comparison.cpp.o"
  "CMakeFiles/bench_fig4_comparison.dir/bench/bench_fig4_comparison.cpp.o.d"
  "CMakeFiles/bench_fig4_comparison.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_fig4_comparison.dir/bench/bench_util.cc.o.d"
  "bench/bench_fig4_comparison"
  "bench/bench_fig4_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
