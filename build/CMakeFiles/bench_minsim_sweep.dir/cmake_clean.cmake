file(REMOVE_RECURSE
  "CMakeFiles/bench_minsim_sweep.dir/bench/bench_minsim_sweep.cpp.o"
  "CMakeFiles/bench_minsim_sweep.dir/bench/bench_minsim_sweep.cpp.o.d"
  "CMakeFiles/bench_minsim_sweep.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_minsim_sweep.dir/bench/bench_util.cc.o.d"
  "bench/bench_minsim_sweep"
  "bench/bench_minsim_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minsim_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
