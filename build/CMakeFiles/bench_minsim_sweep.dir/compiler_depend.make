# Empty compiler generated dependencies file for bench_minsim_sweep.
# This may be replaced when dependencies are built.
