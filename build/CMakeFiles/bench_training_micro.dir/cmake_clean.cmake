file(REMOVE_RECURSE
  "CMakeFiles/bench_training_micro.dir/bench/bench_training_micro.cpp.o"
  "CMakeFiles/bench_training_micro.dir/bench/bench_training_micro.cpp.o.d"
  "CMakeFiles/bench_training_micro.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_training_micro.dir/bench/bench_util.cc.o.d"
  "bench/bench_training_micro"
  "bench/bench_training_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_training_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
