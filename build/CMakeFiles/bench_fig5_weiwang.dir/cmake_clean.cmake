file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_weiwang.dir/bench/bench_fig5_weiwang.cpp.o"
  "CMakeFiles/bench_fig5_weiwang.dir/bench/bench_fig5_weiwang.cpp.o.d"
  "CMakeFiles/bench_fig5_weiwang.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_fig5_weiwang.dir/bench/bench_util.cc.o.d"
  "bench/bench_fig5_weiwang"
  "bench/bench_fig5_weiwang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_weiwang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
