# Empty dependencies file for bench_fig5_weiwang.
# This may be replaced when dependencies are built.
