file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_combine.dir/bench/bench_ablation_combine.cpp.o"
  "CMakeFiles/bench_ablation_combine.dir/bench/bench_ablation_combine.cpp.o.d"
  "CMakeFiles/bench_ablation_combine.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_ablation_combine.dir/bench/bench_util.cc.o.d"
  "bench/bench_ablation_combine"
  "bench/bench_ablation_combine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_combine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
