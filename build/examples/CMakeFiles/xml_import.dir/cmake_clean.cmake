file(REMOVE_RECURSE
  "CMakeFiles/xml_import.dir/xml_import.cpp.o"
  "CMakeFiles/xml_import.dir/xml_import.cpp.o.d"
  "xml_import"
  "xml_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
