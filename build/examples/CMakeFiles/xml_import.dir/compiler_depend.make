# Empty compiler generated dependencies file for xml_import.
# This may be replaced when dependencies are built.
