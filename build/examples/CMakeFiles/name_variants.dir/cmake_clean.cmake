file(REMOVE_RECURSE
  "CMakeFiles/name_variants.dir/name_variants.cpp.o"
  "CMakeFiles/name_variants.dir/name_variants.cpp.o.d"
  "name_variants"
  "name_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
