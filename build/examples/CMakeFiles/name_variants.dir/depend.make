# Empty dependencies file for name_variants.
# This may be replaced when dependencies are built.
