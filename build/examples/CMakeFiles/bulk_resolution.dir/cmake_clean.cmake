file(REMOVE_RECURSE
  "CMakeFiles/bulk_resolution.dir/bulk_resolution.cpp.o"
  "CMakeFiles/bulk_resolution.dir/bulk_resolution.cpp.o.d"
  "bulk_resolution"
  "bulk_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
