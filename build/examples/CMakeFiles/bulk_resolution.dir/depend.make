# Empty dependencies file for bulk_resolution.
# This may be replaced when dependencies are built.
