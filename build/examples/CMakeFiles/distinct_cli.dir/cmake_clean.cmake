file(REMOVE_RECURSE
  "CMakeFiles/distinct_cli.dir/distinct_cli.cpp.o"
  "CMakeFiles/distinct_cli.dir/distinct_cli.cpp.o.d"
  "distinct_cli"
  "distinct_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
