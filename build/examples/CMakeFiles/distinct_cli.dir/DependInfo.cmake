
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/distinct_cli.cpp" "examples/CMakeFiles/distinct_cli.dir/distinct_cli.cpp.o" "gcc" "examples/CMakeFiles/distinct_cli.dir/distinct_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/distinct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_block.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_music.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_dblp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_prop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_train.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
