# Empty compiler generated dependencies file for distinct_cli.
# This may be replaced when dependencies are built.
