file(REMOVE_RECURSE
  "CMakeFiles/dblp_case_study.dir/dblp_case_study.cpp.o"
  "CMakeFiles/dblp_case_study.dir/dblp_case_study.cpp.o.d"
  "dblp_case_study"
  "dblp_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
