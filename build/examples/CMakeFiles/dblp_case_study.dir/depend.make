# Empty dependencies file for dblp_case_study.
# This may be replaced when dependencies are built.
