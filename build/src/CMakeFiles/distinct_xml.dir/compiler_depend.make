# Empty compiler generated dependencies file for distinct_xml.
# This may be replaced when dependencies are built.
