file(REMOVE_RECURSE
  "CMakeFiles/distinct_xml.dir/xml/xml_parser.cc.o"
  "CMakeFiles/distinct_xml.dir/xml/xml_parser.cc.o.d"
  "libdistinct_xml.a"
  "libdistinct_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
