file(REMOVE_RECURSE
  "libdistinct_xml.a"
)
