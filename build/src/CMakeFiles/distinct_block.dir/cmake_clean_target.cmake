file(REMOVE_RECURSE
  "libdistinct_block.a"
)
