file(REMOVE_RECURSE
  "CMakeFiles/distinct_block.dir/block/name_blocking.cc.o"
  "CMakeFiles/distinct_block.dir/block/name_blocking.cc.o.d"
  "CMakeFiles/distinct_block.dir/block/qgram.cc.o"
  "CMakeFiles/distinct_block.dir/block/qgram.cc.o.d"
  "libdistinct_block.a"
  "libdistinct_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
