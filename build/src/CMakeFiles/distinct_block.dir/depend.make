# Empty dependencies file for distinct_block.
# This may be replaced when dependencies are built.
