
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/name_blocking.cc" "src/CMakeFiles/distinct_block.dir/block/name_blocking.cc.o" "gcc" "src/CMakeFiles/distinct_block.dir/block/name_blocking.cc.o.d"
  "/root/repo/src/block/qgram.cc" "src/CMakeFiles/distinct_block.dir/block/qgram.cc.o" "gcc" "src/CMakeFiles/distinct_block.dir/block/qgram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/distinct_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
