# Empty compiler generated dependencies file for distinct_common.
# This may be replaced when dependencies are built.
