file(REMOVE_RECURSE
  "CMakeFiles/distinct_common.dir/common/dictionary.cc.o"
  "CMakeFiles/distinct_common.dir/common/dictionary.cc.o.d"
  "CMakeFiles/distinct_common.dir/common/flags.cc.o"
  "CMakeFiles/distinct_common.dir/common/flags.cc.o.d"
  "CMakeFiles/distinct_common.dir/common/rng.cc.o"
  "CMakeFiles/distinct_common.dir/common/rng.cc.o.d"
  "CMakeFiles/distinct_common.dir/common/status.cc.o"
  "CMakeFiles/distinct_common.dir/common/status.cc.o.d"
  "CMakeFiles/distinct_common.dir/common/string_util.cc.o"
  "CMakeFiles/distinct_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/distinct_common.dir/common/text_table.cc.o"
  "CMakeFiles/distinct_common.dir/common/text_table.cc.o.d"
  "CMakeFiles/distinct_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/distinct_common.dir/common/thread_pool.cc.o.d"
  "libdistinct_common.a"
  "libdistinct_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
