file(REMOVE_RECURSE
  "libdistinct_common.a"
)
