file(REMOVE_RECURSE
  "libdistinct_dblp.a"
)
