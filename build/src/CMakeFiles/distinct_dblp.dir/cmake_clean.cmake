file(REMOVE_RECURSE
  "CMakeFiles/distinct_dblp.dir/dblp/dataset_io.cc.o"
  "CMakeFiles/distinct_dblp.dir/dblp/dataset_io.cc.o.d"
  "CMakeFiles/distinct_dblp.dir/dblp/generator.cc.o"
  "CMakeFiles/distinct_dblp.dir/dblp/generator.cc.o.d"
  "CMakeFiles/distinct_dblp.dir/dblp/name_pool.cc.o"
  "CMakeFiles/distinct_dblp.dir/dblp/name_pool.cc.o.d"
  "CMakeFiles/distinct_dblp.dir/dblp/schema.cc.o"
  "CMakeFiles/distinct_dblp.dir/dblp/schema.cc.o.d"
  "CMakeFiles/distinct_dblp.dir/dblp/stats.cc.o"
  "CMakeFiles/distinct_dblp.dir/dblp/stats.cc.o.d"
  "CMakeFiles/distinct_dblp.dir/dblp/xml_loader.cc.o"
  "CMakeFiles/distinct_dblp.dir/dblp/xml_loader.cc.o.d"
  "libdistinct_dblp.a"
  "libdistinct_dblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
