# Empty compiler generated dependencies file for distinct_dblp.
# This may be replaced when dependencies are built.
