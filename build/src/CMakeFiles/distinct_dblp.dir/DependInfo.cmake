
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dblp/dataset_io.cc" "src/CMakeFiles/distinct_dblp.dir/dblp/dataset_io.cc.o" "gcc" "src/CMakeFiles/distinct_dblp.dir/dblp/dataset_io.cc.o.d"
  "/root/repo/src/dblp/generator.cc" "src/CMakeFiles/distinct_dblp.dir/dblp/generator.cc.o" "gcc" "src/CMakeFiles/distinct_dblp.dir/dblp/generator.cc.o.d"
  "/root/repo/src/dblp/name_pool.cc" "src/CMakeFiles/distinct_dblp.dir/dblp/name_pool.cc.o" "gcc" "src/CMakeFiles/distinct_dblp.dir/dblp/name_pool.cc.o.d"
  "/root/repo/src/dblp/schema.cc" "src/CMakeFiles/distinct_dblp.dir/dblp/schema.cc.o" "gcc" "src/CMakeFiles/distinct_dblp.dir/dblp/schema.cc.o.d"
  "/root/repo/src/dblp/stats.cc" "src/CMakeFiles/distinct_dblp.dir/dblp/stats.cc.o" "gcc" "src/CMakeFiles/distinct_dblp.dir/dblp/stats.cc.o.d"
  "/root/repo/src/dblp/xml_loader.cc" "src/CMakeFiles/distinct_dblp.dir/dblp/xml_loader.cc.o" "gcc" "src/CMakeFiles/distinct_dblp.dir/dblp/xml_loader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/distinct_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
