# Empty compiler generated dependencies file for distinct_eval.
# This may be replaced when dependencies are built.
