file(REMOVE_RECURSE
  "CMakeFiles/distinct_eval.dir/eval/confusion.cc.o"
  "CMakeFiles/distinct_eval.dir/eval/confusion.cc.o.d"
  "CMakeFiles/distinct_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/distinct_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/distinct_eval.dir/eval/visualize.cc.o"
  "CMakeFiles/distinct_eval.dir/eval/visualize.cc.o.d"
  "libdistinct_eval.a"
  "libdistinct_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
