file(REMOVE_RECURSE
  "libdistinct_eval.a"
)
