
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/feature_vector.cc" "src/CMakeFiles/distinct_sim.dir/sim/feature_vector.cc.o" "gcc" "src/CMakeFiles/distinct_sim.dir/sim/feature_vector.cc.o.d"
  "/root/repo/src/sim/resemblance.cc" "src/CMakeFiles/distinct_sim.dir/sim/resemblance.cc.o" "gcc" "src/CMakeFiles/distinct_sim.dir/sim/resemblance.cc.o.d"
  "/root/repo/src/sim/similarity_model.cc" "src/CMakeFiles/distinct_sim.dir/sim/similarity_model.cc.o" "gcc" "src/CMakeFiles/distinct_sim.dir/sim/similarity_model.cc.o.d"
  "/root/repo/src/sim/similarity_model_io.cc" "src/CMakeFiles/distinct_sim.dir/sim/similarity_model_io.cc.o" "gcc" "src/CMakeFiles/distinct_sim.dir/sim/similarity_model_io.cc.o.d"
  "/root/repo/src/sim/walk_probability.cc" "src/CMakeFiles/distinct_sim.dir/sim/walk_probability.cc.o" "gcc" "src/CMakeFiles/distinct_sim.dir/sim/walk_probability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/distinct_prop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/distinct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
