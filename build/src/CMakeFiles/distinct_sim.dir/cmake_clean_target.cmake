file(REMOVE_RECURSE
  "libdistinct_sim.a"
)
