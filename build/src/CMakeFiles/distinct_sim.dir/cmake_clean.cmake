file(REMOVE_RECURSE
  "CMakeFiles/distinct_sim.dir/sim/feature_vector.cc.o"
  "CMakeFiles/distinct_sim.dir/sim/feature_vector.cc.o.d"
  "CMakeFiles/distinct_sim.dir/sim/resemblance.cc.o"
  "CMakeFiles/distinct_sim.dir/sim/resemblance.cc.o.d"
  "CMakeFiles/distinct_sim.dir/sim/similarity_model.cc.o"
  "CMakeFiles/distinct_sim.dir/sim/similarity_model.cc.o.d"
  "CMakeFiles/distinct_sim.dir/sim/similarity_model_io.cc.o"
  "CMakeFiles/distinct_sim.dir/sim/similarity_model_io.cc.o.d"
  "CMakeFiles/distinct_sim.dir/sim/walk_probability.cc.o"
  "CMakeFiles/distinct_sim.dir/sim/walk_probability.cc.o.d"
  "libdistinct_sim.a"
  "libdistinct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
