# Empty compiler generated dependencies file for distinct_sim.
# This may be replaced when dependencies are built.
