file(REMOVE_RECURSE
  "CMakeFiles/distinct_music.dir/music/catalog.cc.o"
  "CMakeFiles/distinct_music.dir/music/catalog.cc.o.d"
  "libdistinct_music.a"
  "libdistinct_music.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_music.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
