file(REMOVE_RECURSE
  "libdistinct_music.a"
)
