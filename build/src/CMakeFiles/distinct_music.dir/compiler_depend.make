# Empty compiler generated dependencies file for distinct_music.
# This may be replaced when dependencies are built.
