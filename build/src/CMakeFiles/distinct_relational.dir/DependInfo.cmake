
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/csv.cc" "src/CMakeFiles/distinct_relational.dir/relational/csv.cc.o" "gcc" "src/CMakeFiles/distinct_relational.dir/relational/csv.cc.o.d"
  "/root/repo/src/relational/database.cc" "src/CMakeFiles/distinct_relational.dir/relational/database.cc.o" "gcc" "src/CMakeFiles/distinct_relational.dir/relational/database.cc.o.d"
  "/root/repo/src/relational/join_path.cc" "src/CMakeFiles/distinct_relational.dir/relational/join_path.cc.o" "gcc" "src/CMakeFiles/distinct_relational.dir/relational/join_path.cc.o.d"
  "/root/repo/src/relational/reference_spec.cc" "src/CMakeFiles/distinct_relational.dir/relational/reference_spec.cc.o" "gcc" "src/CMakeFiles/distinct_relational.dir/relational/reference_spec.cc.o.d"
  "/root/repo/src/relational/schema_graph.cc" "src/CMakeFiles/distinct_relational.dir/relational/schema_graph.cc.o" "gcc" "src/CMakeFiles/distinct_relational.dir/relational/schema_graph.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/CMakeFiles/distinct_relational.dir/relational/table.cc.o" "gcc" "src/CMakeFiles/distinct_relational.dir/relational/table.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/distinct_relational.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/distinct_relational.dir/relational/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/distinct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
