# Empty compiler generated dependencies file for distinct_relational.
# This may be replaced when dependencies are built.
