file(REMOVE_RECURSE
  "CMakeFiles/distinct_relational.dir/relational/csv.cc.o"
  "CMakeFiles/distinct_relational.dir/relational/csv.cc.o.d"
  "CMakeFiles/distinct_relational.dir/relational/database.cc.o"
  "CMakeFiles/distinct_relational.dir/relational/database.cc.o.d"
  "CMakeFiles/distinct_relational.dir/relational/join_path.cc.o"
  "CMakeFiles/distinct_relational.dir/relational/join_path.cc.o.d"
  "CMakeFiles/distinct_relational.dir/relational/reference_spec.cc.o"
  "CMakeFiles/distinct_relational.dir/relational/reference_spec.cc.o.d"
  "CMakeFiles/distinct_relational.dir/relational/schema_graph.cc.o"
  "CMakeFiles/distinct_relational.dir/relational/schema_graph.cc.o.d"
  "CMakeFiles/distinct_relational.dir/relational/table.cc.o"
  "CMakeFiles/distinct_relational.dir/relational/table.cc.o.d"
  "CMakeFiles/distinct_relational.dir/relational/value.cc.o"
  "CMakeFiles/distinct_relational.dir/relational/value.cc.o.d"
  "libdistinct_relational.a"
  "libdistinct_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
