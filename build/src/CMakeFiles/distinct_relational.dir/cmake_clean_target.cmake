file(REMOVE_RECURSE
  "libdistinct_relational.a"
)
