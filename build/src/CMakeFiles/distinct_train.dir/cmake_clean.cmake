file(REMOVE_RECURSE
  "CMakeFiles/distinct_train.dir/train/rare_names.cc.o"
  "CMakeFiles/distinct_train.dir/train/rare_names.cc.o.d"
  "CMakeFiles/distinct_train.dir/train/training_set.cc.o"
  "CMakeFiles/distinct_train.dir/train/training_set.cc.o.d"
  "libdistinct_train.a"
  "libdistinct_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
