# Empty dependencies file for distinct_train.
# This may be replaced when dependencies are built.
