file(REMOVE_RECURSE
  "libdistinct_train.a"
)
