
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/agglomerative.cc" "src/CMakeFiles/distinct_cluster.dir/cluster/agglomerative.cc.o" "gcc" "src/CMakeFiles/distinct_cluster.dir/cluster/agglomerative.cc.o.d"
  "/root/repo/src/cluster/linkage.cc" "src/CMakeFiles/distinct_cluster.dir/cluster/linkage.cc.o" "gcc" "src/CMakeFiles/distinct_cluster.dir/cluster/linkage.cc.o.d"
  "/root/repo/src/cluster/pair_matrix.cc" "src/CMakeFiles/distinct_cluster.dir/cluster/pair_matrix.cc.o" "gcc" "src/CMakeFiles/distinct_cluster.dir/cluster/pair_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/distinct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
