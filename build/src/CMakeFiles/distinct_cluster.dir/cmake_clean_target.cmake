file(REMOVE_RECURSE
  "libdistinct_cluster.a"
)
