# Empty dependencies file for distinct_cluster.
# This may be replaced when dependencies are built.
