file(REMOVE_RECURSE
  "CMakeFiles/distinct_cluster.dir/cluster/agglomerative.cc.o"
  "CMakeFiles/distinct_cluster.dir/cluster/agglomerative.cc.o.d"
  "CMakeFiles/distinct_cluster.dir/cluster/linkage.cc.o"
  "CMakeFiles/distinct_cluster.dir/cluster/linkage.cc.o.d"
  "CMakeFiles/distinct_cluster.dir/cluster/pair_matrix.cc.o"
  "CMakeFiles/distinct_cluster.dir/cluster/pair_matrix.cc.o.d"
  "libdistinct_cluster.a"
  "libdistinct_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
