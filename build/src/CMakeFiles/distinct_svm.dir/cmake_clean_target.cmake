file(REMOVE_RECURSE
  "libdistinct_svm.a"
)
