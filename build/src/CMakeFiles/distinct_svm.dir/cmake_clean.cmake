file(REMOVE_RECURSE
  "CMakeFiles/distinct_svm.dir/svm/linear_svm.cc.o"
  "CMakeFiles/distinct_svm.dir/svm/linear_svm.cc.o.d"
  "CMakeFiles/distinct_svm.dir/svm/model_io.cc.o"
  "CMakeFiles/distinct_svm.dir/svm/model_io.cc.o.d"
  "CMakeFiles/distinct_svm.dir/svm/scaler.cc.o"
  "CMakeFiles/distinct_svm.dir/svm/scaler.cc.o.d"
  "libdistinct_svm.a"
  "libdistinct_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
