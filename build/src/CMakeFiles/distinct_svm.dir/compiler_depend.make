# Empty compiler generated dependencies file for distinct_svm.
# This may be replaced when dependencies are built.
