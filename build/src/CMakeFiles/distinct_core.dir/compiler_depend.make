# Empty compiler generated dependencies file for distinct_core.
# This may be replaced when dependencies are built.
