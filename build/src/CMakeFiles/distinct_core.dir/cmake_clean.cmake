file(REMOVE_RECURSE
  "CMakeFiles/distinct_core.dir/core/distinct.cc.o"
  "CMakeFiles/distinct_core.dir/core/distinct.cc.o.d"
  "CMakeFiles/distinct_core.dir/core/evaluation.cc.o"
  "CMakeFiles/distinct_core.dir/core/evaluation.cc.o.d"
  "CMakeFiles/distinct_core.dir/core/pipeline.cc.o"
  "CMakeFiles/distinct_core.dir/core/pipeline.cc.o.d"
  "CMakeFiles/distinct_core.dir/core/scan.cc.o"
  "CMakeFiles/distinct_core.dir/core/scan.cc.o.d"
  "CMakeFiles/distinct_core.dir/core/variants.cc.o"
  "CMakeFiles/distinct_core.dir/core/variants.cc.o.d"
  "libdistinct_core.a"
  "libdistinct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
