file(REMOVE_RECURSE
  "libdistinct_core.a"
)
