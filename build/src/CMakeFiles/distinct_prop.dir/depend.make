# Empty dependencies file for distinct_prop.
# This may be replaced when dependencies are built.
