file(REMOVE_RECURSE
  "CMakeFiles/distinct_prop.dir/prop/link_graph.cc.o"
  "CMakeFiles/distinct_prop.dir/prop/link_graph.cc.o.d"
  "CMakeFiles/distinct_prop.dir/prop/profile.cc.o"
  "CMakeFiles/distinct_prop.dir/prop/profile.cc.o.d"
  "CMakeFiles/distinct_prop.dir/prop/propagation.cc.o"
  "CMakeFiles/distinct_prop.dir/prop/propagation.cc.o.d"
  "libdistinct_prop.a"
  "libdistinct_prop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_prop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
