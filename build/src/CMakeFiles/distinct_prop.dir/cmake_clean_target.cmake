file(REMOVE_RECURSE
  "libdistinct_prop.a"
)
