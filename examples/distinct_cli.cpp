// distinct_cli — the library as a command-line tool.
//
//   distinct_cli generate --dir=DATA [--seed=42]        write a dataset
//   distinct_cli generate-xml --out=FILE --rows=100000  write a dblp.xml
//   distinct_cli ingest   --xml=FILE --catalog=DIR      stream to catalog
//   distinct_cli train    --dir=DATA --model=FILE       fit + save weights
//   distinct_cli resolve  --dir=DATA --name="Wei Wang" [--model=FILE]
//   distinct_cli scan     --dir=DATA [--min-refs=6] [--threads=2]
//   distinct_cli append   --dir=DATA --delta=DIR [--verify]
//   distinct_cli eval     --dir=DATA [--model=FILE]     score vs cases.csv
//   distinct_cli serve    --dir=DATA [--port=0] [--deadline-ms=N]
//
// DATA holds the five DBLP CSVs plus cases.csv (see dblp/dataset_io.h);
// `generate` creates it, or bring your own files in the same format.
// `append` ingests extra rows (per-table CSVs in --delta, same headers)
// without rebuilding: the catalog re-resolves only the names the delta
// dirtied and reuses every other cached resolution.
//
// `ingest` streams a dblp.xml-shaped file (real dump or `generate-xml`
// output) into an mmap-able columnar catalog directory without ever
// materialising the document; train/resolve/scan/append/serve then accept
// --catalog=DIR in place of --dir, loading the database from the catalog
// and stamping its generation into checkpoints so --resume refuses state
// taken against a different ingest.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/ingest.h"
#include "catalog/reader.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/text_table.h"
#include "core/delta.h"
#include "core/distinct.h"
#include "core/evaluation.h"
#include "core/scan.h"
#include "core/scan_shard.h"
#include "dblp/dataset_io.h"
#include "dblp/schema.h"
#include "dblp/stats.h"
#include "dblp/xml_corpus.h"
#include "dblp/xml_loader.h"
#include "obs/heartbeat.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/server.h"
#include "serve/service.h"
#include "sim/similarity_model_io.h"

namespace {

using namespace distinct;

int Fail(const Status& status) {
  DISTINCT_LOG(ERROR) << status.ToString();
  return 1;
}

/// Range-validated access to a numeric flag. FlagParser::Parse already
/// rejects malformed values with a clear error; this layer adds the range
/// checks the call sites used to skip — previously GetInt64 results were
/// narrowed with unchecked static_cast<int>, so --threads=5000000000
/// silently wrapped instead of failing.
StatusOr<int64_t> Int64FlagInRange(const FlagParser& flags, const char* name,
                                   int64_t min_value, int64_t max_value) {
  const int64_t value = flags.GetInt64(name);
  if (value < min_value || value > max_value) {
    return InvalidArgumentError(StrFormat(
        "--%s=%lld is out of range [%lld, %lld]", name,
        static_cast<long long>(value), static_cast<long long>(min_value),
        static_cast<long long>(max_value)));
  }
  return value;
}

/// Same, for flags consumed as int: bounds are checked before narrowing.
StatusOr<int> IntFlagInRange(const FlagParser& flags, const char* name,
                             int min_value, int max_value) {
  auto value = Int64FlagInRange(flags, name, min_value, max_value);
  if (!value.ok()) {
    return value.status();
  }
  return static_cast<int>(*value);
}

StatusOr<double> DoubleFlagInRange(const FlagParser& flags, const char* name,
                                   double min_value, double max_value) {
  const double value = flags.GetDouble(name);
  if (!(value >= min_value && value <= max_value)) {  // rejects NaN too
    return InvalidArgumentError(StrFormat(
        "--%s=%g is out of range [%g, %g]", name, value, min_value,
        max_value));
  }
  return value;
}

void Usage() {
  std::fprintf(stderr,
               "usage: distinct_cli "
               "<generate|generate-xml|ingest|train|resolve|scan|append|"
               "eval|serve> [flags]\n"
               "  common flags: --dir=DATA --model=FILE --min-sim=0.03\n"
               "                --catalog=DIR (load the database from an\n"
               "                 ingested columnar catalog instead of "
               "--dir)\n"
               "                --threads=N --stopping=fixed|largest-gap\n"
               "                --no-incremental --prop-cache-mb=N\n"
               "                --kernel=fused|reference "
               "--kernel-pruning\n"
               "                --kernel-isa=auto|scalar|gallop|avx2\n"
               "                --verbosity=0|1|2\n"
               "                --report --metrics-json=FILE "
               "--trace-json=FILE\n"
               "  generate: --seed=N\n"
               "  generate-xml: --out=FILE --rows=N (target references) "
               "--seed=N\n"
               "  ingest:   --xml=FILE --catalog=DIR --segment-papers=N\n"
               "            --scan-memory-mb=N (working-set budget)\n"
               "  resolve:  --name=\"Wei Wang\"\n"
               "  scan:     --min-refs=N --threads=N --shards=N\n"
               "            --scan-memory-mb=N --checkpoint-dir=DIR "
               "--resume\n"
               "            --heartbeat=FILE --progress-interval=SECONDS\n"
               "  append:   --delta=DIR [--verify] [--min-refs=N]\n"
               "  serve:    --port=N --host=ADDR --max-inflight=N\n"
               "            --deadline-ms=N --result-cache=N\n"
               "            --scan-memory-mb=N (admission budget)\n");
}

/// Tables attached to the run report by subcommands (the scan's shard
/// table); collected by main() after the command finishes.
std::vector<obs::ReportTable> g_report_tables;

/// --trace-json was requested; subcommands that shard turn on per-shard
/// trace fragments when this is set.
bool g_want_trace = false;

/// Where the sharded scan wrote trace fragments (and for how many shards);
/// set by RunScan so main() can merge them into the exported trace.
std::string g_trace_fragment_dir;
int g_trace_fragment_shards = 0;

/// Progress counters the scan publishes for the heartbeat reporter.
obs::ProgressState g_progress;

/// The driver timeline for a fragment-merged trace: every recorded span
/// except strict descendants of "scan_shard" spans — those live in their
/// shard's fragment (pid shard+1). The scan_shard marker itself stays in
/// the driver row as the shard boundary.
std::vector<obs::SpanRecord> DriverSpans(
    const std::vector<obs::SpanRecord>& spans) {
  std::vector<int> remap(spans.size(), -1);
  std::vector<char> dropped(spans.size(), 0);
  std::vector<obs::SpanRecord> out;
  out.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const obs::SpanRecord& span = spans[i];
    if (span.parent >= 0) {
      const auto p = static_cast<size_t>(span.parent);
      if (dropped[p] != 0 || spans[p].name == "scan_shard") {
        dropped[i] = 1;
        continue;
      }
    }
    remap[i] = static_cast<int>(out.size());
    obs::SpanRecord copy = span;
    copy.parent = span.parent >= 0 ? remap[static_cast<size_t>(span.parent)]
                                   : -1;
    out.push_back(std::move(copy));
  }
  return out;
}

/// Exports the span tree as Chrome-trace JSON, merging per-shard fragments
/// when the scan wrote them.
Status ExportTrace(const std::string& path) {
  const std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Snapshot();
  std::vector<obs::TraceProcess> processes;
  if (!g_trace_fragment_dir.empty()) {
    auto merged = obs::CollectShardedTrace(
        DriverSpans(spans), g_trace_fragment_dir, g_trace_fragment_shards);
    DISTINCT_RETURN_IF_ERROR(merged.status());
    processes = *std::move(merged);
  } else {
    obs::TraceProcess driver;
    driver.pid = 0;
    driver.name = "driver";
    driver.spans = spans;
    processes.push_back(std::move(driver));
  }
  return obs::WriteChromeTrace(path, processes);
}

/// Applies --kernel / --kernel-pruning (shared by every engine-building
/// command).
Status ApplyKernelFlags(const FlagParser& flags, DistinctConfig* config) {
  const std::string kernel = flags.GetString("kernel");
  if (kernel == "fused") {
    config->kernel = PairKernelType::kFused;
  } else if (kernel == "reference") {
    config->kernel = PairKernelType::kReference;
  } else {
    return InvalidArgumentError(
        "--kernel must be 'fused' or 'reference', got '" + kernel + "'");
  }
  config->kernel_pruning = flags.GetBool("kernel-pruning");
  const std::string isa = flags.GetString("kernel-isa");
  if (!ParseKernelIsa(isa, &config->kernel_isa)) {
    return InvalidArgumentError(
        "--kernel-isa must be 'auto', 'scalar', 'gallop' or 'avx2', got '" +
        isa + "'");
  }
  return Status::Ok();
}

/// The database a command runs over, plus where it came from. When
/// --catalog is set the database is materialised from the mmap'd columnar
/// catalog and `catalog_generation` carries the ingest generation to stamp
/// into the engine (checkpoint/resume compatibility); otherwise the CSVs
/// in --dir are loaded and the generation stays 0.
struct CliDatabase {
  Database db;
  int64_t catalog_generation = 0;
};

StatusOr<CliDatabase> LoadCliDatabase(const FlagParser& flags) {
  CliDatabase loaded;
  const std::string catalog_dir = flags.GetString("catalog");
  if (!catalog_dir.empty()) {
    auto reader = catalog::CatalogReader::Open(catalog_dir);
    DISTINCT_RETURN_IF_ERROR(reader.status());
    XmlLoadOptions options;
    auto min_refs = IntFlagInRange(flags, "min-refs-per-author", 0, 1 << 30);
    DISTINCT_RETURN_IF_ERROR(min_refs.status());
    options.min_refs_per_author = *min_refs;
    auto result = (*reader)->MaterializeDatabase(options);
    DISTINCT_RETURN_IF_ERROR(result.status());
    DISTINCT_LOG(INFO) << "catalog " << catalog_dir << ": generation "
                       << (*reader)->generation() << ", "
                       << result->records_loaded << " records, "
                       << ((*reader)->mapped_bytes() >> 20) << " MiB mapped";
    loaded.db = std::move(result->db);
    loaded.catalog_generation = (*reader)->generation();
    return loaded;
  }
  auto db = LoadDblpDatabaseCsv(flags.GetString("dir"));
  DISTINCT_RETURN_IF_ERROR(db.status());
  loaded.db = *std::move(db);
  return loaded;
}

StatusOr<Distinct> MakeEngine(const Database& db, const FlagParser& flags,
                              int64_t catalog_generation = 0) {
  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  config.base_catalog_version = catalog_generation;
  auto min_sim = DoubleFlagInRange(flags, "min-sim", 0.0, 1e9);
  if (!min_sim.ok()) return min_sim.status();
  config.min_sim = *min_sim;
  config.auto_min_sim = flags.GetBool("auto-min-sim");
  auto threads = IntFlagInRange(flags, "threads", 1, 4096);
  if (!threads.ok()) return threads.status();
  config.num_threads = *threads;
  auto cache_mb = IntFlagInRange(flags, "prop-cache-mb", 0, 1 << 20);
  if (!cache_mb.ok()) return cache_mb.status();
  config.propagation_cache_mb = *cache_mb;
  // Cap keeps the budget in bytes (mb << 20) inside int64.
  auto scan_memory_mb = Int64FlagInRange(flags, "scan-memory-mb", 0,
                                         int64_t{1} << 40);
  if (!scan_memory_mb.ok()) return scan_memory_mb.status();
  config.scan_memory_mb = *scan_memory_mb;
  config.incremental = flags.GetBool("incremental");
  config.supervised = !flags.GetBool("unsupervised");
  if (Status s = ApplyKernelFlags(flags, &config); !s.ok()) return s;
  config.observability = obs::Enabled();
  const std::string stopping = flags.GetString("stopping");
  if (stopping == "largest-gap" || stopping == "gap") {
    config.stopping = StoppingRule::kLargestGap;
  } else if (stopping != "fixed") {
    return InvalidArgumentError(
        "--stopping must be 'fixed' or 'largest-gap', got '" + stopping +
        "'");
  }
  const std::string model_path = flags.GetString("model");
  if (!model_path.empty()) {
    auto model = LoadSimilarityModel(model_path);
    if (model.ok()) {
      DISTINCT_LOG(INFO) << "using model " << model_path;
      return Distinct::CreateWithModel(db, DblpReferenceSpec(), config,
                                       *std::move(model));
    }
    DISTINCT_LOG(WARN) << model.status().ToString()
                       << " — training instead";
  }
  return Distinct::Create(db, DblpReferenceSpec(), config);
}

int RunGenerate(const FlagParser& flags) {
  GeneratorConfig config;
  auto seed = Int64FlagInRange(flags, "seed", 0, INT64_MAX);
  if (!seed.ok()) return Fail(seed.status());
  config.seed = static_cast<uint64_t>(*seed);
  auto dataset = GenerateDblpDataset(config);
  if (!dataset.ok()) return Fail(dataset.status());
  const std::string dir = flags.GetString("dir");
  std::filesystem::create_directories(dir);
  if (Status s = SaveDataset(*dataset, dir); !s.ok()) return Fail(s);
  auto stats = ComputeDblpStats(dataset->db);
  std::printf("wrote %s: %s\n", dir.c_str(),
              stats.ok() ? stats->DebugString().c_str() : "");
  return 0;
}

int RunGenerateXml(const FlagParser& flags) {
  const std::string out = flags.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr, "error: generate-xml needs --out=FILE\n");
    return 1;
  }
  XmlCorpusConfig config;
  auto seed = Int64FlagInRange(flags, "seed", 0, INT64_MAX);
  if (!seed.ok()) return Fail(seed.status());
  config.seed = static_cast<uint64_t>(*seed);
  auto rows = Int64FlagInRange(flags, "rows", 1, INT64_MAX);
  if (!rows.ok()) return Fail(rows.status());
  config.target_refs = *rows;
  Stopwatch watch;
  auto stats = WriteSyntheticDblpXml(out, config);
  if (!stats.ok()) return Fail(stats.status());
  std::printf("wrote %s: %lld papers, %lld references, %.1f MiB in %.2fs\n",
              out.c_str(), static_cast<long long>(stats->papers),
              static_cast<long long>(stats->refs),
              static_cast<double>(stats->bytes) / (1 << 20), watch.Seconds());
  return 0;
}

int RunIngest(const FlagParser& flags) {
  const std::string xml = flags.GetString("xml");
  const std::string catalog_dir = flags.GetString("catalog");
  if (xml.empty() || catalog_dir.empty()) {
    std::fprintf(stderr, "error: ingest needs --xml=FILE and --catalog=DIR\n");
    return 1;
  }
  catalog::IngestOptions options;
  auto segment_papers =
      Int64FlagInRange(flags, "segment-papers", 1, int64_t{1} << 31);
  if (!segment_papers.ok()) return Fail(segment_papers.status());
  options.segment_papers = *segment_papers;
  auto budget = Int64FlagInRange(flags, "scan-memory-mb", 0,
                                 int64_t{1} << 40);
  if (!budget.ok()) return Fail(budget.status());
  options.memory_budget_mb = *budget;
  Stopwatch watch;
  auto stats = catalog::IngestDblpXml(xml, catalog_dir, options);
  if (!stats.ok()) return Fail(stats.status());
  const double seconds = watch.Seconds();
  const double mb = static_cast<double>(stats->bytes_read) / (1 << 20);
  std::printf(
      "ingested %s -> %s: %lld records (%lld skipped), %lld refs\n",
      xml.c_str(), catalog_dir.c_str(),
      static_cast<long long>(stats->records),
      static_cast<long long>(stats->skipped),
      static_cast<long long>(stats->summary.num_refs));
  std::printf(
      "  %.1f MiB in %.2fs (%.1f MiB/s); %lld segments, dicts "
      "%lld authors / %lld venues / %lld titles; generation %lld\n",
      mb, seconds, seconds > 0 ? mb / seconds : 0.0,
      static_cast<long long>(stats->summary.num_segments),
      static_cast<long long>(stats->summary.num_authors),
      static_cast<long long>(stats->summary.num_venues),
      static_cast<long long>(stats->summary.num_titles),
      static_cast<long long>(stats->summary.generation));
  return 0;
}

int RunTrain(const FlagParser& flags) {
  auto db = LoadCliDatabase(flags);
  if (!db.ok()) return Fail(db.status());
  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  config.base_catalog_version = db->catalog_generation;
  auto min_sim = DoubleFlagInRange(flags, "min-sim", 0.0, 1e9);
  if (!min_sim.ok()) return Fail(min_sim.status());
  config.min_sim = *min_sim;
  auto threads = IntFlagInRange(flags, "threads", 1, 4096);
  if (!threads.ok()) return Fail(threads.status());
  config.num_threads = *threads;
  auto cache_mb = IntFlagInRange(flags, "prop-cache-mb", 0, 1 << 20);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  config.propagation_cache_mb = *cache_mb;
  if (Status s = ApplyKernelFlags(flags, &config); !s.ok()) return Fail(s);
  config.observability = obs::Enabled();
  auto engine = Distinct::Create(db->db, DblpReferenceSpec(), config);
  if (!engine.ok()) return Fail(engine.status());
  const TrainingReport& report = engine->report();
  std::printf("trained on %zu pairs, %d paths, %.2fs\n",
              report.num_training_pairs, report.num_paths,
              report.seconds_total);
  const std::string model_path = flags.GetString("model");
  if (model_path.empty()) {
    std::fprintf(stderr, "error: train needs --model=FILE to save into\n");
    return 1;
  }
  if (Status s = SaveSimilarityModel(engine->model(), model_path); !s.ok()) {
    return Fail(s);
  }
  std::printf("saved model to %s\n", model_path.c_str());
  return 0;
}

int RunResolve(const FlagParser& flags) {
  auto db = LoadCliDatabase(flags);
  if (!db.ok()) return Fail(db.status());
  auto engine = MakeEngine(db->db, flags, db->catalog_generation);
  if (!engine.ok()) return Fail(engine.status());
  const std::string name = flags.GetString("name");
  auto result = engine->ResolveName(name);
  if (!result.ok()) return Fail(result.status());
  std::printf("'%s': %zu references -> %d people\n", name.c_str(),
              result->refs.size(), result->clustering.num_clusters);
  for (size_t i = 0; i < result->refs.size(); ++i) {
    std::printf("  publish row %d -> person %d\n", result->refs[i],
                result->clustering.assignment[i]);
  }
  return 0;
}

/// One row per planned shard, attached to the run report (--report /
/// --metrics-json).
obs::ReportTable ShardTable(const std::vector<ShardOutcome>& shards) {
  obs::ReportTable table;
  table.title = "shards";
  table.header = {"shard",   "state",   "groups", "refs",
                  "pairs",   "threads", "sec",    "error"};
  for (const ShardOutcome& shard : shards) {
    table.rows.push_back(
        {StrFormat("%d", shard.shard_id), ShardStateName(shard.state),
         StrFormat("%lld", static_cast<long long>(shard.num_groups)),
         StrFormat("%lld", static_cast<long long>(shard.num_refs)),
         StrFormat("%lld", static_cast<long long>(shard.estimated_pairs)),
         StrFormat("%d", shard.threads_used),
         StrFormat("%.3f", shard.seconds), shard.error});
  }
  return table;
}

int RunScan(const FlagParser& flags) {
  auto db = LoadCliDatabase(flags);
  if (!db.ok()) return Fail(db.status());
  auto engine = MakeEngine(db->db, flags, db->catalog_generation);
  if (!engine.ok()) return Fail(engine.status());
  ScanOptions scan;
  // int64 end to end: a --min-refs/--max-refs beyond INT_MAX compares
  // exactly instead of being narrowed.
  auto min_refs = Int64FlagInRange(flags, "min-refs", 1, INT64_MAX);
  if (!min_refs.ok()) return Fail(min_refs.status());
  scan.min_refs = *min_refs;
  auto max_refs = Int64FlagInRange(flags, "max-refs", 0, INT64_MAX);
  if (!max_refs.ok()) return Fail(max_refs.status());
  scan.max_refs = *max_refs;
  // Served from the engine's name index; no second pass over the tables.
  auto groups = ScanNameGroups(*engine, scan);
  if (!groups.ok()) return Fail(groups.status());

  const int threads = engine->config().num_threads;
  auto shards = IntFlagInRange(flags, "shards", 1, 1 << 20);
  if (!shards.ok()) return Fail(shards.status());
  const std::string checkpoint_dir = flags.GetString("checkpoint-dir");
  const bool resume = flags.GetBool("resume");
  const bool sharded = *shards > 1 || !checkpoint_dir.empty() || resume ||
                       engine->config().scan_memory_mb > 0;

  std::vector<BulkResolution> results;
  BulkStats stats;
  if (sharded) {
    ShardedScanOptions options;
    options.num_shards = *shards;
    options.num_threads = threads;
    options.checkpoint_dir = checkpoint_dir;
    options.resume = resume;
    options.write_trace_fragments = g_want_trace;
    options.progress = &g_progress;
    if (g_want_trace && !checkpoint_dir.empty()) {
      g_trace_fragment_dir = checkpoint_dir;
      g_trace_fragment_shards = *shards;
    }
    auto sharded_result = RunShardedScan(*engine, *groups, options);
    if (!sharded_result.ok()) return Fail(sharded_result.status());
    results = std::move(sharded_result->results);
    stats = sharded_result->stats;
    g_report_tables.push_back(ShardTable(sharded_result->shards));
    for (const ShardOutcome& shard : sharded_result->shards) {
      if (shard.state == ShardState::kFailed) {
        std::fprintf(stderr, "shard %d failed: %s\n", shard.shard_id,
                     shard.error.c_str());
      }
    }
  } else {
    auto bulk =
        threads > 1
            ? ResolveAllNamesParallel(*engine, *groups, threads, &results)
            : ResolveAllNames(*engine, *groups, &results);
    if (!bulk.ok()) return Fail(bulk.status());
    stats = *bulk;
  }
  std::printf("%lld names, %lld refs, %.2fs; %lld split\n",
              static_cast<long long>(stats.names_resolved),
              static_cast<long long>(stats.total_refs), stats.seconds,
              static_cast<long long>(stats.names_split));
  for (const BulkResolution& r : results) {
    if (r.clustering.num_clusters > 1) {
      std::printf("  %-28s %3zu refs -> %d people\n", r.name.c_str(),
                  r.num_refs, r.clustering.num_clusters);
    }
  }
  return 0;
}

/// Exact catalog equality — the differential `--verify` promises: same
/// names in the same order, same assignments, bit-identical merge
/// similarities.
bool SameResolutions(const std::vector<BulkResolution>& got,
                     const std::vector<BulkResolution>& want) {
  if (got.size() != want.size()) return false;
  for (size_t g = 0; g < want.size(); ++g) {
    if (got[g].name != want[g].name || got[g].num_refs != want[g].num_refs ||
        got[g].clustering.num_clusters != want[g].clustering.num_clusters ||
        got[g].clustering.assignment != want[g].clustering.assignment ||
        got[g].clustering.merges.size() != want[g].clustering.merges.size()) {
      return false;
    }
    for (size_t m = 0; m < want[g].clustering.merges.size(); ++m) {
      if (got[g].clustering.merges[m].into != want[g].clustering.merges[m].into ||
          got[g].clustering.merges[m].from != want[g].clustering.merges[m].from ||
          got[g].clustering.merges[m].similarity !=
              want[g].clustering.merges[m].similarity) {
        return false;
      }
    }
  }
  return true;
}

int RunAppend(const FlagParser& flags) {
  auto loaded = LoadCliDatabase(flags);
  if (!loaded.ok()) return Fail(loaded.status());
  Database* db = &loaded->db;
  const std::string delta_dir = flags.GetString("delta");
  if (delta_dir.empty()) {
    std::fprintf(stderr, "error: append needs --delta=DIR (per-table CSVs "
                         "of rows to append)\n");
    return 1;
  }
  auto engine = MakeEngine(*db, flags, loaded->catalog_generation);
  if (!engine.ok()) return Fail(engine.status());

  ScanOptions scan;
  auto min_refs = Int64FlagInRange(flags, "min-refs", 1, INT64_MAX);
  if (!min_refs.ok()) return Fail(min_refs.status());
  scan.min_refs = *min_refs;
  auto max_refs = Int64FlagInRange(flags, "max-refs", 0, INT64_MAX);
  if (!max_refs.ok()) return Fail(max_refs.status());
  scan.max_refs = *max_refs;

  IncrementalCatalog catalog(*engine, scan);
  if (Status s = catalog.Build(); !s.ok()) return Fail(s);
  const size_t names_before = catalog.resolutions().size();

  auto delta = LoadDatabaseDeltaCsv(*db, delta_dir);
  if (!delta.ok()) return Fail(delta.status());
  auto report = catalog.Apply(*db, *delta);
  if (!report.ok()) return Fail(report.status());

  std::printf(
      "appended %lld rows (%lld references): %zu dirty names, "
      "%lld resolutions reused, %lld re-resolved, %lld memo entries "
      "erased\n",
      static_cast<long long>(report->rows_appended),
      static_cast<long long>(report->new_refs), report->dirty_names.size(),
      static_cast<long long>(report->names_reused),
      static_cast<long long>(report->names_reresolved),
      static_cast<long long>(report->cache_entries_erased));
  std::printf("catalog: %zu -> %zu names, version %lld, watermark %lld\n",
              names_before, catalog.resolutions().size(),
              static_cast<long long>(report->catalog_version),
              static_cast<long long>(report->tuple_watermark));

  if (flags.GetBool("verify")) {
    // Differential: a fresh engine over the appended database with the
    // same model must land on exactly the same catalog.
    auto fresh = Distinct::CreateWithModel(*db, DblpReferenceSpec(),
                                           engine->config(), engine->model());
    if (!fresh.ok()) return Fail(fresh.status());
    IncrementalCatalog rebuilt(*fresh, scan);
    if (Status s = rebuilt.Build(); !s.ok()) return Fail(s);
    if (!SameResolutions(catalog.resolutions(), rebuilt.resolutions())) {
      std::fprintf(stderr,
                   "verify FAILED: incremental catalog differs from batch "
                   "rebuild\n");
      return 1;
    }
    std::printf("verify OK: incremental catalog matches batch rebuild "
                "(%zu names)\n",
                catalog.resolutions().size());
  }
  return 0;
}

int RunServe(const FlagParser& flags) {
  // Block the shutdown signals before any thread exists: the service's
  // kernel pool and the server's connection threads inherit this mask, so
  // SIGTERM/SIGINT are only ever delivered to the sigwait below and a
  // drain cannot race a default-action termination on a worker thread.
  sigset_t shutdown_signals;
  sigemptyset(&shutdown_signals);
  sigaddset(&shutdown_signals, SIGINT);
  sigaddset(&shutdown_signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &shutdown_signals, nullptr);

  auto db = LoadCliDatabase(flags);
  if (!db.ok()) return Fail(db.status());
  auto engine = MakeEngine(db->db, flags, db->catalog_generation);
  if (!engine.ok()) return Fail(engine.status());

  serve::ServiceOptions service_options;
  auto max_inflight = IntFlagInRange(flags, "max-inflight", 1, 1 << 20);
  if (!max_inflight.ok()) return Fail(max_inflight.status());
  service_options.max_inflight = *max_inflight;
  auto deadline_ms = Int64FlagInRange(flags, "deadline-ms", 0,
                                      serve::kMaxDeadlineMs);
  if (!deadline_ms.ok()) return Fail(deadline_ms.status());
  service_options.default_deadline_ms = *deadline_ms;
  auto result_cache = Int64FlagInRange(flags, "result-cache", 0, 1 << 24);
  if (!result_cache.ok()) return Fail(result_cache.status());
  service_options.result_cache_entries = static_cast<size_t>(*result_cache);
  // The same budget flag the sharded scan honours bounds admission here.
  service_options.memory_budget_mb = engine->config().scan_memory_mb;
  service_options.progress = &g_progress;
  serve::ServeService service(*engine, service_options);

  serve::ServerOptions server_options;
  server_options.host = flags.GetString("host");
  auto port = Int64FlagInRange(flags, "port", 0, 65535);
  if (!port.ok()) return Fail(port.status());
  server_options.port = static_cast<uint16_t>(*port);
  serve::ServeServer server(&service, server_options);
  if (Status s = server.Start(); !s.ok()) return Fail(s);

  // Scripts scrape this line for the (possibly ephemeral) port; flush so
  // it is visible before the first query arrives.
  std::printf("serving on %s:%u (threads=%d, max-inflight=%d, "
              "deadline-ms=%lld, budget-mb=%lld)\n",
              server_options.host.c_str(), server.port(),
              service.options().num_threads, service.options().max_inflight,
              static_cast<long long>(service.options().default_deadline_ms),
              static_cast<long long>(service.options().memory_budget_mb));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&shutdown_signals, &sig);
  DISTINCT_LOG(INFO) << "received "
                     << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
                     << ", draining";
  server.Shutdown();
  const serve::ServiceStats stats = service.stats();
  std::printf("served %lld queries (%lld answered, %lld batched, %lld "
              "cache hits, %lld rejected, %lld deadline-exceeded)\n",
              static_cast<long long>(stats.queries),
              static_cast<long long>(stats.answered),
              static_cast<long long>(stats.batched),
              static_cast<long long>(stats.cache_hits),
              static_cast<long long>(stats.rejected_inflight +
                                     stats.rejected_memory),
              static_cast<long long>(stats.deadline_exceeded));
  return 0;
}

int RunEval(const FlagParser& flags) {
  auto dataset = LoadDataset(flags.GetString("dir"));
  if (!dataset.ok()) return Fail(dataset.status());
  auto engine = MakeEngine(dataset->db, flags);
  if (!engine.ok()) return Fail(engine.status());
  auto evaluations = EvaluateCases(*engine, dataset->cases);
  if (!evaluations.ok()) return Fail(evaluations.status());

  TextTable table({"name", "precision", "recall", "f-measure"});
  for (size_t c = 1; c <= 3; ++c) table.SetRightAlign(c);
  for (const CaseEvaluation& evaluation : *evaluations) {
    table.AddRow({evaluation.name,
                  StrFormat("%.3f", evaluation.scores.precision),
                  StrFormat("%.3f", evaluation.scores.recall),
                  StrFormat("%.3f", evaluation.scores.f1)});
  }
  const AggregateScores aggregate = Aggregate(*evaluations);
  table.AddRow({"average", StrFormat("%.3f", aggregate.precision),
                StrFormat("%.3f", aggregate.recall),
                StrFormat("%.3f", aggregate.f1)});
  std::printf("%s", table.Render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];

  FlagParser flags;
  flags.AddString("dir", "distinct_data", "dataset directory");
  flags.AddString("model", "", "similarity-model file");
  flags.AddString("name", "Wei Wang", "name to resolve");
  flags.AddInt64("seed", 42, "generator seed");
  flags.AddString("catalog", "",
                  "columnar catalog directory: output of `ingest`, input "
                  "(instead of --dir) for train/resolve/scan/append/serve");
  flags.AddString("xml", "", "ingest: source dblp.xml file");
  flags.AddString("out", "", "generate-xml: output file");
  flags.AddInt64("rows", 100000,
                 "generate-xml: stop after at least this many author "
                 "references");
  flags.AddInt64("segment-papers", 65536,
                 "ingest: papers per column segment file");
  flags.AddInt64("min-refs-per-author", 0,
                 "catalog load: drop authors with fewer references when "
                 "materialising the database (0 keeps everyone)");
  flags.AddInt64("min-refs", 6, "scan: minimum references per name");
  flags.AddInt64("max-refs", 500, "scan: maximum references per name");
  flags.AddInt64("threads", 1,
                 "worker threads (similarity kernel; scan: also names)");
  flags.AddInt64("prop-cache-mb", 64,
                 "propagation subtree-memo budget in MiB (0 disables "
                 "storage; results are unchanged either way)");
  flags.AddInt64("shards", 1,
                 "scan: partition the name groups into this many "
                 "deterministic shards (balanced by estimated pair count)");
  flags.AddInt64("scan-memory-mb", 0,
                 "scan: per-shard memory budget in MiB (0 = unbounded); "
                 "bounds the subtree memo and concurrent workspaces");
  flags.AddString("checkpoint-dir", "",
                  "scan: write per-shard checkpoints into this directory "
                  "(empty disables checkpointing)");
  flags.AddBool("resume", false,
                "scan: load complete shard checkpoints from "
                "--checkpoint-dir instead of re-resolving them");
  flags.AddString("delta", "",
                  "append: directory of per-table CSVs (same headers as "
                  "the dataset) holding the rows to ingest");
  flags.AddBool("verify", false,
                "append: rebuild from scratch afterwards and check the "
                "incremental catalog matches it exactly");
  flags.AddString("kernel", "fused",
                  "pair-similarity kernel: fused (flat arena, one "
                  "merge-join per pair+path, candidate skipping) | "
                  "reference (three-pass exactness baseline)");
  flags.AddBool("kernel-pruning", false,
                "fused kernel, opt-in approximation: skip pairs whose "
                "mass-bound similarity upper bound is below min-sim when "
                "clustering; may shift merges whose cluster-average sits "
                "near the floor (off by default — every candidate is "
                "computed exactly)");
  flags.AddString("kernel-isa", "auto",
                  "fused-kernel merge-join variant: auto (fastest this "
                  "host supports) | scalar | gallop | avx2 (falls back to "
                  "scalar when unsupported); all bit-identical");
  flags.AddDouble("min-sim", 3e-2, "clustering merge threshold");
  flags.AddBool("auto-min-sim", false,
                "derive min-sim from the training pairs (ignores --min-sim)");
  flags.AddBool("unsupervised", false,
                "uniform path weights instead of SVM training (the paper's "
                "unsupervised baseline; works on corpora without enough "
                "rare names to train on)");
  flags.AddString("stopping", "fixed",
                  "merge stopping rule: fixed | largest-gap");
  flags.AddBool("incremental", true,
                "incremental cluster-sum maintenance (--no-incremental "
                "recomputes from the base matrices)");
  flags.AddInt64("verbosity", 1,
                 "log verbosity: 0 = warnings/errors, 1 = +info, 2 = +debug");
  flags.AddBool("report", false,
                "print a per-stage metrics report after the command");
  flags.AddString("metrics-json", "",
                  "write the structured run report as JSON to this file");
  flags.AddString("trace-json", "",
                  "write the span tree as Chrome-trace/Perfetto JSON to "
                  "this file (sharded scans with --checkpoint-dir merge "
                  "per-shard fragments, including resumed shards)");
  flags.AddString("heartbeat", "",
                  "scan: atomically rewrite this JSON heartbeat file every "
                  "--progress-interval seconds (progress, refs/s, ETA, RSS) "
                  "and print a progress line at verbosity >= 1");
  flags.AddDouble("progress-interval", 10.0,
                  "seconds between heartbeat samples");
  flags.AddInt64("port", 0,
                 "serve: TCP port to listen on (0 binds an ephemeral port, "
                 "printed on startup)");
  flags.AddString("host", "127.0.0.1",
                  "serve: bind address (loopback by default — the protocol "
                  "is unauthenticated plaintext)");
  flags.AddInt64("max-inflight", 64,
                 "serve: queries admitted concurrently; excess is rejected "
                 "as overloaded with a retry hint");
  flags.AddInt64("deadline-ms", 0,
                 "serve: default per-query deadline in ms (0 = none); a "
                 "request's own deadline_ms may tighten but not extend it");
  flags.AddInt64("result-cache", 4096,
                 "serve: completed answers kept for exact re-serving "
                 "(FIFO-evicted; 0 disables the cache)");
  if (Status s = flags.Parse(argc - 2, argv + 2); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  auto verbosity = IntFlagInRange(flags, "verbosity", 0, 2);
  if (!verbosity.ok()) {
    std::fprintf(stderr, "%s\n%s", verbosity.status().ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }
  SetLogVerbosity(*verbosity);
  const std::string metrics_json = flags.GetString("metrics-json");
  const std::string trace_json = flags.GetString("trace-json");
  g_want_trace = !trace_json.empty();
  const bool want_report = flags.GetBool("report") || !metrics_json.empty();
  if (want_report || g_want_trace) {
    obs::SetEnabled(true);
    obs::MetricsRegistry::Global().Reset();
    obs::Tracer::Global().Reset();
    obs::MemoryTracker::Global().Reset();
  }

  std::unique_ptr<obs::HeartbeatReporter> heartbeat;
  const std::string heartbeat_path = flags.GetString("heartbeat");
  if (!heartbeat_path.empty()) {
    auto interval =
        DoubleFlagInRange(flags, "progress-interval", 0.01, 86400.0);
    if (!interval.ok()) {
      std::fprintf(stderr, "%s\n%s", interval.status().ToString().c_str(),
                   flags.Help().c_str());
      return 1;
    }
    obs::HeartbeatReporter::Options beat;
    beat.file_path = heartbeat_path;
    beat.interval_seconds = *interval;
    beat.print_progress = *verbosity >= 1;
    beat.label = command;
    heartbeat = std::make_unique<obs::HeartbeatReporter>(beat, &g_progress);
  }

  int exit_code = 1;
  if (command == "generate") {
    exit_code = RunGenerate(flags);
  } else if (command == "generate-xml") {
    exit_code = RunGenerateXml(flags);
  } else if (command == "ingest") {
    exit_code = RunIngest(flags);
  } else if (command == "train") {
    exit_code = RunTrain(flags);
  } else if (command == "resolve") {
    exit_code = RunResolve(flags);
  } else if (command == "scan") {
    exit_code = RunScan(flags);
  } else if (command == "append") {
    exit_code = RunAppend(flags);
  } else if (command == "eval") {
    exit_code = RunEval(flags);
  } else if (command == "serve") {
    exit_code = RunServe(flags);
  } else {
    Usage();
    return 1;
  }

  if (heartbeat != nullptr) {
    // Terminal beat carries the run's outcome: a failed command ends the
    // heartbeat file on status "error", not on a beat that reads as a
    // live (or successful) run.
    heartbeat->StopWithStatus(exit_code == 0 ? "ok" : "error");
  }
  if (g_want_trace) {
    if (Status s = ExportTrace(trace_json); !s.ok()) {
      return Fail(s);
    }
    DISTINCT_LOG(INFO) << "wrote trace to " << trace_json;
  }
  if (want_report) {
    obs::RunReport run_report = obs::CollectRunReport(command);
    run_report.tables = std::move(g_report_tables);
    if (flags.GetBool("report")) {
      std::printf("%s", obs::RunReportToText(run_report).c_str());
    }
    if (!metrics_json.empty()) {
      if (Status s = obs::WriteRunReportJson(run_report, metrics_json);
          !s.ok()) {
        return Fail(s);
      }
      DISTINCT_LOG(INFO) << "wrote run report to " << metrics_json;
    }
  }
  return exit_code;
}
