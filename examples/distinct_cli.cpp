// distinct_cli — the library as a command-line tool.
//
//   distinct_cli generate --dir=DATA [--seed=42]        write a dataset
//   distinct_cli train    --dir=DATA --model=FILE       fit + save weights
//   distinct_cli resolve  --dir=DATA --name="Wei Wang" [--model=FILE]
//   distinct_cli scan     --dir=DATA [--min-refs=6] [--threads=2]
//   distinct_cli eval     --dir=DATA [--model=FILE]     score vs cases.csv
//
// DATA holds the five DBLP CSVs plus cases.csv (see dblp/dataset_io.h);
// `generate` creates it, or bring your own files in the same format.

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/text_table.h"
#include "core/distinct.h"
#include "core/evaluation.h"
#include "core/scan.h"
#include "dblp/dataset_io.h"
#include "dblp/schema.h"
#include "dblp/stats.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/similarity_model_io.h"

namespace {

using namespace distinct;

int Fail(const Status& status) {
  DISTINCT_LOG(ERROR) << status.ToString();
  return 1;
}

void Usage() {
  std::fprintf(stderr,
               "usage: distinct_cli <generate|train|resolve|scan|eval> "
               "[flags]\n"
               "  common flags: --dir=DATA --model=FILE --min-sim=0.03\n"
               "                --threads=N --stopping=fixed|largest-gap\n"
               "                --no-incremental --prop-cache-mb=N\n"
               "                --verbosity=0|1|2\n"
               "                --report --metrics-json=FILE\n"
               "  generate: --seed=N\n"
               "  resolve:  --name=\"Wei Wang\"\n"
               "  scan:     --min-refs=N --threads=N\n");
}

StatusOr<Distinct> MakeEngine(const Database& db, const FlagParser& flags) {
  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  config.min_sim = flags.GetDouble("min-sim");
  config.auto_min_sim = flags.GetBool("auto-min-sim");
  config.num_threads = static_cast<int>(flags.GetInt64("threads"));
  config.propagation_cache_mb =
      static_cast<int>(flags.GetInt64("prop-cache-mb"));
  config.incremental = flags.GetBool("incremental");
  config.observability = obs::Enabled();
  const std::string stopping = flags.GetString("stopping");
  if (stopping == "largest-gap" || stopping == "gap") {
    config.stopping = StoppingRule::kLargestGap;
  } else if (stopping != "fixed") {
    return InvalidArgumentError(
        "--stopping must be 'fixed' or 'largest-gap', got '" + stopping +
        "'");
  }
  const std::string model_path = flags.GetString("model");
  if (!model_path.empty()) {
    auto model = LoadSimilarityModel(model_path);
    if (model.ok()) {
      DISTINCT_LOG(INFO) << "using model " << model_path;
      return Distinct::CreateWithModel(db, DblpReferenceSpec(), config,
                                       *std::move(model));
    }
    DISTINCT_LOG(WARN) << model.status().ToString()
                       << " — training instead";
  }
  return Distinct::Create(db, DblpReferenceSpec(), config);
}

int RunGenerate(const FlagParser& flags) {
  GeneratorConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto dataset = GenerateDblpDataset(config);
  if (!dataset.ok()) return Fail(dataset.status());
  const std::string dir = flags.GetString("dir");
  std::filesystem::create_directories(dir);
  if (Status s = SaveDataset(*dataset, dir); !s.ok()) return Fail(s);
  auto stats = ComputeDblpStats(dataset->db);
  std::printf("wrote %s: %s\n", dir.c_str(),
              stats.ok() ? stats->DebugString().c_str() : "");
  return 0;
}

int RunTrain(const FlagParser& flags) {
  auto db = LoadDblpDatabaseCsv(flags.GetString("dir"));
  if (!db.ok()) return Fail(db.status());
  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  config.min_sim = flags.GetDouble("min-sim");
  config.num_threads = static_cast<int>(flags.GetInt64("threads"));
  config.propagation_cache_mb =
      static_cast<int>(flags.GetInt64("prop-cache-mb"));
  config.observability = obs::Enabled();
  auto engine = Distinct::Create(*db, DblpReferenceSpec(), config);
  if (!engine.ok()) return Fail(engine.status());
  const TrainingReport& report = engine->report();
  std::printf("trained on %zu pairs, %d paths, %.2fs\n",
              report.num_training_pairs, report.num_paths,
              report.seconds_total);
  const std::string model_path = flags.GetString("model");
  if (model_path.empty()) {
    std::fprintf(stderr, "error: train needs --model=FILE to save into\n");
    return 1;
  }
  if (Status s = SaveSimilarityModel(engine->model(), model_path); !s.ok()) {
    return Fail(s);
  }
  std::printf("saved model to %s\n", model_path.c_str());
  return 0;
}

int RunResolve(const FlagParser& flags) {
  auto db = LoadDblpDatabaseCsv(flags.GetString("dir"));
  if (!db.ok()) return Fail(db.status());
  auto engine = MakeEngine(*db, flags);
  if (!engine.ok()) return Fail(engine.status());
  const std::string name = flags.GetString("name");
  auto result = engine->ResolveName(name);
  if (!result.ok()) return Fail(result.status());
  std::printf("'%s': %zu references -> %d people\n", name.c_str(),
              result->refs.size(), result->clustering.num_clusters);
  for (size_t i = 0; i < result->refs.size(); ++i) {
    std::printf("  publish row %d -> person %d\n", result->refs[i],
                result->clustering.assignment[i]);
  }
  return 0;
}

int RunScan(const FlagParser& flags) {
  auto db = LoadDblpDatabaseCsv(flags.GetString("dir"));
  if (!db.ok()) return Fail(db.status());
  auto engine = MakeEngine(*db, flags);
  if (!engine.ok()) return Fail(engine.status());
  ScanOptions scan;
  scan.min_refs = static_cast<int>(flags.GetInt64("min-refs"));
  scan.max_refs = static_cast<int>(flags.GetInt64("max-refs"));
  // Served from the engine's name index; no second pass over the tables.
  auto groups = ScanNameGroups(*engine, scan);
  if (!groups.ok()) return Fail(groups.status());

  std::vector<BulkResolution> results;
  const int threads = static_cast<int>(flags.GetInt64("threads"));
  auto stats =
      threads > 1
          ? ResolveAllNamesParallel(*engine, *groups, threads, &results)
          : ResolveAllNames(*engine, *groups, &results);
  if (!stats.ok()) return Fail(stats.status());
  std::printf("%lld names, %lld refs, %.2fs; %lld split\n",
              static_cast<long long>(stats->names_resolved),
              static_cast<long long>(stats->total_refs), stats->seconds,
              static_cast<long long>(stats->names_split));
  for (const BulkResolution& r : results) {
    if (r.clustering.num_clusters > 1) {
      std::printf("  %-28s %3zu refs -> %d people\n", r.name.c_str(),
                  r.num_refs, r.clustering.num_clusters);
    }
  }
  return 0;
}

int RunEval(const FlagParser& flags) {
  auto dataset = LoadDataset(flags.GetString("dir"));
  if (!dataset.ok()) return Fail(dataset.status());
  auto engine = MakeEngine(dataset->db, flags);
  if (!engine.ok()) return Fail(engine.status());
  auto evaluations = EvaluateCases(*engine, dataset->cases);
  if (!evaluations.ok()) return Fail(evaluations.status());

  TextTable table({"name", "precision", "recall", "f-measure"});
  for (size_t c = 1; c <= 3; ++c) table.SetRightAlign(c);
  for (const CaseEvaluation& evaluation : *evaluations) {
    table.AddRow({evaluation.name,
                  StrFormat("%.3f", evaluation.scores.precision),
                  StrFormat("%.3f", evaluation.scores.recall),
                  StrFormat("%.3f", evaluation.scores.f1)});
  }
  const AggregateScores aggregate = Aggregate(*evaluations);
  table.AddRow({"average", StrFormat("%.3f", aggregate.precision),
                StrFormat("%.3f", aggregate.recall),
                StrFormat("%.3f", aggregate.f1)});
  std::printf("%s", table.Render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];

  FlagParser flags;
  flags.AddString("dir", "distinct_data", "dataset directory");
  flags.AddString("model", "", "similarity-model file");
  flags.AddString("name", "Wei Wang", "name to resolve");
  flags.AddInt64("seed", 42, "generator seed");
  flags.AddInt64("min-refs", 6, "scan: minimum references per name");
  flags.AddInt64("max-refs", 500, "scan: maximum references per name");
  flags.AddInt64("threads", 1,
                 "worker threads (similarity kernel; scan: also names)");
  flags.AddInt64("prop-cache-mb", 64,
                 "propagation subtree-memo budget in MiB (0 disables "
                 "storage; results are unchanged either way)");
  flags.AddDouble("min-sim", 3e-2, "clustering merge threshold");
  flags.AddBool("auto-min-sim", false,
                "derive min-sim from the training pairs (ignores --min-sim)");
  flags.AddString("stopping", "fixed",
                  "merge stopping rule: fixed | largest-gap");
  flags.AddBool("incremental", true,
                "incremental cluster-sum maintenance (--no-incremental "
                "recomputes from the base matrices)");
  flags.AddInt64("verbosity", 1,
                 "log verbosity: 0 = warnings/errors, 1 = +info, 2 = +debug");
  flags.AddBool("report", false,
                "print a per-stage metrics report after the command");
  flags.AddString("metrics-json", "",
                  "write the structured run report as JSON to this file");
  if (Status s = flags.Parse(argc - 2, argv + 2); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  SetLogVerbosity(static_cast<int>(flags.GetInt64("verbosity")));
  const std::string metrics_json = flags.GetString("metrics-json");
  const bool want_report = flags.GetBool("report") || !metrics_json.empty();
  if (want_report) {
    obs::SetEnabled(true);
    obs::MetricsRegistry::Global().Reset();
    obs::Tracer::Global().Reset();
  }

  int exit_code = 1;
  if (command == "generate") {
    exit_code = RunGenerate(flags);
  } else if (command == "train") {
    exit_code = RunTrain(flags);
  } else if (command == "resolve") {
    exit_code = RunResolve(flags);
  } else if (command == "scan") {
    exit_code = RunScan(flags);
  } else if (command == "eval") {
    exit_code = RunEval(flags);
  } else {
    Usage();
    return 1;
  }

  if (want_report) {
    const obs::RunReport run_report = obs::CollectRunReport(command);
    if (flags.GetBool("report")) {
      std::printf("%s", obs::RunReportToText(run_report).c_str());
    }
    if (!metrics_json.empty()) {
      if (Status s = obs::WriteRunReportJson(run_report, metrics_json);
          !s.ok()) {
        return Fail(s);
      }
      DISTINCT_LOG(INFO) << "wrote run report to " << metrics_json;
    }
  }
  return exit_code;
}
