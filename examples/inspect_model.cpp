// Model inspection: prints the learned per-path weights and the pairwise
// similarity distribution for one ambiguous name — the tool to use when
// calibrating min-sim for a new database.
//
//   ./build/examples/inspect_model [--name="Wei Wang"] [--seed=42]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "core/distinct.h"
#include "dblp/generator.h"
#include "dblp/schema.h"

int main(int argc, char** argv) {
  using namespace distinct;

  FlagParser flags;
  flags.AddString("name", "Wei Wang", "ambiguous name to inspect");
  flags.AddInt64("seed", 42, "generator seed");
  flags.AddBool("supervised", true, "train SVM path weights");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  GeneratorConfig generator;
  generator.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto dataset = GenerateDblpDataset(generator);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  config.supervised = flags.GetBool("supervised");
  auto engine = Distinct::Create(dataset->db, DblpReferenceSpec(), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", engine->model().DebugString().c_str());

  const std::string name = flags.GetString("name");
  auto refs = engine->RefsForName(name);
  if (!refs.ok() || refs->empty()) {
    std::fprintf(stderr, "no references named '%s'\n", name.c_str());
    return 1;
  }
  auto matrices = engine->ComputeMatrices(*refs);
  if (!matrices.ok()) {
    std::fprintf(stderr, "%s\n", matrices.status().ToString().c_str());
    return 1;
  }

  // Locate the case's ground truth to split same/different-entity pairs.
  const AmbiguousCase* ambiguous_case = nullptr;
  for (const AmbiguousCase& c : dataset->cases) {
    if (c.name == name) {
      ambiguous_case = &c;
    }
  }

  std::vector<double> same_resem, diff_resem, same_walk, diff_walk;
  const size_t n = refs->size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      bool same = false;
      if (ambiguous_case != nullptr) {
        int ti = -1, tj = -1;
        for (size_t k = 0; k < ambiguous_case->publish_rows.size(); ++k) {
          if (ambiguous_case->publish_rows[k] == (*refs)[i]) {
            ti = ambiguous_case->truth[k];
          }
          if (ambiguous_case->publish_rows[k] == (*refs)[j]) {
            tj = ambiguous_case->truth[k];
          }
        }
        same = (ti >= 0 && ti == tj);
      }
      (same ? same_resem : diff_resem).push_back(matrices->first.at(i, j));
      (same ? same_walk : diff_walk).push_back(matrices->second.at(i, j));
    }
  }

  auto summarize = [](const char* label, std::vector<double>& values) {
    if (values.empty()) {
      std::printf("%-24s (no pairs)\n", label);
      return;
    }
    std::sort(values.begin(), values.end());
    auto pct = [&](double q) {
      return values[static_cast<size_t>(q * (values.size() - 1))];
    };
    std::printf(
        "%-24s n=%6zu  p10=%.6g  p50=%.6g  p90=%.6g  p99=%.6g  max=%.6g\n",
        label, values.size(), pct(0.10), pct(0.50), pct(0.90), pct(0.99),
        values.back());
  };
  std::printf("pairwise similarities for '%s' (%zu refs):\n", name.c_str(),
              n);
  summarize("same-entity resem", same_resem);
  summarize("diff-entity resem", diff_resem);
  summarize("same-entity walk", same_walk);
  summarize("diff-entity walk", diff_walk);
  return 0;
}
