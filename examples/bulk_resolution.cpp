// Whole-database resolution: scan every name, resolve each, report the
// splits — the "run DISTINCT over the catalog" deployment mode. Also
// demonstrates the train-once / reuse workflow via model serialization.
//
//   ./build/examples/bulk_resolution [--seed=42] [--min-refs=6]
//       [--model=/tmp/distinct.model]

#include <cstdio>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/distinct.h"
#include "core/scan.h"
#include "dblp/generator.h"
#include "dblp/schema.h"
#include "sim/similarity_model_io.h"

int main(int argc, char** argv) {
  using namespace distinct;

  FlagParser flags;
  flags.AddInt64("seed", 42, "generator seed");
  flags.AddInt64("min-refs", 6, "resolve names with at least this many refs");
  flags.AddInt64("max-refs", 200, "skip names with more refs than this");
  flags.AddString("model", "", "optional path to save/reuse the model");
  flags.AddInt64("threads", 1, "worker threads for resolution (1 = sequential)");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  GeneratorConfig generator;
  generator.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto dataset = GenerateDblpDataset(generator);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  // The engine-level kernel pool parallelizes training features and any
  // direct ResolveName calls; the bulk scan below builds its own pool and
  // nests group and tile parallelism inside it.
  config.num_threads = static_cast<int>(flags.GetInt64("threads"));

  // Train-once / reuse: load a saved model when present, else train and
  // save one.
  const std::string model_path = flags.GetString("model");
  StatusOr<Distinct> engine = NotFoundError("unset");
  if (!model_path.empty()) {
    if (auto model = LoadSimilarityModel(model_path); model.ok()) {
      std::printf("reusing model from %s\n", model_path.c_str());
      engine = Distinct::CreateWithModel(dataset->db, DblpReferenceSpec(),
                                         config, *std::move(model));
    }
  }
  if (!engine.ok()) {
    engine = Distinct::Create(dataset->db, DblpReferenceSpec(), config);
    if (engine.ok() && !model_path.empty()) {
      if (Status s = SaveSimilarityModel(engine->model(), model_path);
          s.ok()) {
        std::printf("trained and saved model to %s\n", model_path.c_str());
      }
    }
  }
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  ScanOptions scan;
  scan.min_refs = static_cast<int>(flags.GetInt64("min-refs"));
  scan.max_refs = static_cast<int>(flags.GetInt64("max-refs"));
  auto groups = ScanNameGroups(*engine, scan);
  if (!groups.ok()) {
    std::fprintf(stderr, "%s\n", groups.status().ToString().c_str());
    return 1;
  }
  std::printf("scanning found %zu candidate names (>= %d refs)\n",
              groups->size(), scan.min_refs);

  std::vector<BulkResolution> results;
  const int threads = static_cast<int>(flags.GetInt64("threads"));
  auto stats = threads > 1
                   ? ResolveAllNamesParallel(*engine, *groups, threads,
                                             &results)
                   : ResolveAllNames(*engine, *groups, &results);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "resolved %lld names (%lld refs) in %.2fs; %lld names split into "
      "%lld clusters total\n\n",
      static_cast<long long>(stats->names_resolved),
      static_cast<long long>(stats->total_refs), stats->seconds,
      static_cast<long long>(stats->names_split),
      static_cast<long long>(stats->total_clusters));

  std::printf("largest splits:\n");
  int shown = 0;
  for (const BulkResolution& r : results) {
    if (r.clustering.num_clusters <= 1) {
      continue;
    }
    std::printf("  %-28s %3zu refs -> %d people\n", r.name.c_str(),
                r.num_refs, r.clustering.num_clusters);
    if (++shown >= 12) {
      break;
    }
  }
  if (shown == 0) {
    std::printf("  (none)\n");
  }
  return 0;
}
