// Runs the pipeline on a real dblp.xml when one is available; otherwise
// falls back to an embedded sample so the example is always runnable.
//
//   ./build/examples/xml_import [--xml=/path/to/dblp.xml]
//       [--name="Wei Wang"] [--min-refs=3]

#include <cstdio>

#include "common/flags.h"
#include "core/distinct.h"
#include "dblp/schema.h"
#include "dblp/stats.h"
#include "dblp/xml_loader.h"

namespace {

constexpr char kEmbeddedSample[] = R"(<?xml version="1.0"?>
<dblp>
  <inproceedings key="conf/vldb/WangYM97">
    <author>Wei Wang</author><author>Jiong Yang</author>
    <author>Richard Muntz</author>
    <title>STING: A Statistical Information Grid Approach</title>
    <booktitle>VLDB</booktitle><year>1997</year>
  </inproceedings>
  <inproceedings key="conf/sigmod/WangWYY02">
    <author>Haixun Wang</author><author>Wei Wang</author>
    <author>Jiong Yang</author><author>Philip S. Yu</author>
    <title>Clustering by pattern similarity</title>
    <booktitle>SIGMOD</booktitle><year>2002</year>
  </inproceedings>
  <inproceedings key="conf/icde/LuYWL01">
    <author>Hongjun Lu</author><author>Yidong Yuan</author>
    <author>Wei Wang</author><author>Xuemin Lin</author>
    <title>Skyline queries</title>
    <booktitle>ICDE</booktitle><year>2001</year>
  </inproceedings>
  <inproceedings key="conf/adma/WangL05">
    <author>Wei Wang</author><author>Xuemin Lin</author>
    <title>Data stream processing</title>
    <booktitle>ADMA</booktitle><year>2005</year>
  </inproceedings>
  <article key="journals/x/YangY03">
    <author>Jiong Yang</author><author>Philip S. Yu</author>
    <title>Some article</title><journal>TKDE</journal><year>2003</year>
  </article>
</dblp>)";

}  // namespace

int main(int argc, char** argv) {
  using namespace distinct;

  FlagParser flags;
  flags.AddString("xml", "", "path to a dblp.xml (empty: embedded sample)");
  flags.AddString("name", "Wei Wang", "name to resolve");
  flags.AddInt64("min-refs", 0, "drop authors with fewer references");
  flags.AddDouble("min-sim", 1e-3, "merge threshold");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  XmlLoadOptions load_options;
  load_options.min_refs_per_author =
      static_cast<int>(flags.GetInt64("min-refs"));

  StatusOr<XmlLoadResult> loaded = NotFoundError("unset");
  const std::string path = flags.GetString("xml");
  if (!path.empty()) {
    std::printf("loading %s ...\n", path.c_str());
    loaded = LoadDblpXmlFile(path, load_options);
  } else {
    std::printf("no --xml given; using the embedded 5-record sample\n");
    loaded = LoadDblpXml(kEmbeddedSample, load_options);
  }
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %lld records (%lld skipped)\n",
              static_cast<long long>(loaded->records_loaded),
              static_cast<long long>(loaded->records_skipped));
  auto stats = ComputeDblpStats(loaded->db);
  if (stats.ok()) {
    std::printf("%s\n", stats->DebugString().c_str());
  }

  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  config.min_sim = flags.GetDouble("min-sim");
  // Supervised training needs a large corpus of rare names; fall back to
  // the unsupervised model when the database is small.
  config.supervised = loaded->db.TotalRows() > 50000;
  if (!config.supervised) {
    std::printf("database too small for auto-training; "
                "using uniform path weights\n");
  }

  auto engine = Distinct::Create(loaded->db, DblpReferenceSpec(), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  const std::string name = flags.GetString("name");
  auto result = engine->ResolveName(name);
  if (!result.ok()) {
    std::fprintf(stderr, "resolve: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("'%s': %zu references -> %d groups\n", name.c_str(),
              result->refs.size(), result->clustering.num_clusters);
  for (size_t i = 0; i < result->refs.size(); ++i) {
    std::printf("  ref %d -> group %d\n", result->refs[i],
                result->clustering.assignment[i]);
  }
  return 0;
}
