// DISTINCT on a non-DBLP schema: an e-commerce catalog where different
// products share the name "Forgotten" (the paper's AllMusic motivation —
// 72 songs and 3 albums share that title). Demonstrates that the engine is
// schema-agnostic: point the ReferenceSpec at any reference relation.
//
// Schema:
//   Artists(artist_id, name)
//   Labels(label_id, name, country)
//   Albums(album_id, title, artist_id -> Artists, label_id -> Labels)
//   Tracks(track_id, song_id -> Songs, album_id -> Albums)
//   Songs(song_id, title)   <- references: Tracks rows, named by song title
//
// The catalog has ONE "Forgotten" entry even though two different songs of
// that title exist (the data entry system couldn't tell them apart — the
// same situation as identically named authors in DBLP). Track references
// of the real Nightfall song appear on Nightfall albums; those of the real
// Ashen Sky song on Ashen Sky albums, and the album/artist/label linkage is
// what lets DISTINCT split them.

#include <cstdio>

#include "core/distinct.h"
#include "eval/visualize.h"

namespace {

using namespace distinct;

StatusOr<Database> MakeMusicDatabase() {
  Database db;

  auto artists = Table::Create(
      "Artists", {ColumnSpec{"artist_id", ColumnType::kInt64, true, ""},
                  ColumnSpec{"name", ColumnType::kString, false, ""}});
  DISTINCT_RETURN_IF_ERROR(artists.status());
  auto labels = Table::Create(
      "Labels", {ColumnSpec{"label_id", ColumnType::kInt64, true, ""},
                 ColumnSpec{"name", ColumnType::kString, false, ""},
                 ColumnSpec{"country", ColumnType::kString, false, ""}});
  DISTINCT_RETURN_IF_ERROR(labels.status());
  auto songs = Table::Create(
      "Songs", {ColumnSpec{"song_id", ColumnType::kInt64, true, ""},
                ColumnSpec{"title", ColumnType::kString, false, ""}});
  DISTINCT_RETURN_IF_ERROR(songs.status());
  auto albums = Table::Create(
      "Albums", {ColumnSpec{"album_id", ColumnType::kInt64, true, ""},
                 ColumnSpec{"title", ColumnType::kString, false, ""},
                 ColumnSpec{"artist_id", ColumnType::kInt64, false,
                            "Artists"},
                 ColumnSpec{"label_id", ColumnType::kInt64, false,
                            "Labels"}});
  DISTINCT_RETURN_IF_ERROR(albums.status());
  auto tracks = Table::Create(
      "Tracks", {ColumnSpec{"track_id", ColumnType::kInt64, true, ""},
                 ColumnSpec{"song_id", ColumnType::kInt64, false, "Songs"},
                 ColumnSpec{"album_id", ColumnType::kInt64, false,
                            "Albums"}});
  DISTINCT_RETURN_IF_ERROR(tracks.status());

  for (auto* table : {&artists, &labels, &songs, &albums, &tracks}) {
    DISTINCT_RETURN_IF_ERROR(db.AddTable(*std::move(*table)).status());
  }

  Table* artists_t = *db.FindMutableTable("Artists");
  (void)*artists_t->AppendRow({Value::Int(0), Value::Str("Nightfall")});
  (void)*artists_t->AppendRow({Value::Int(1), Value::Str("Ashen Sky")});
  Table* labels_t = *db.FindMutableTable("Labels");
  (void)*labels_t->AppendRow(
      {Value::Int(0), Value::Str("Hollow Note"), Value::Str("SE")});
  (void)*labels_t->AppendRow(
      {Value::Int(1), Value::Str("Red Harbor"), Value::Str("US")});
  Table* songs_t = *db.FindMutableTable("Songs");
  // One shared entry for both real "Forgotten" songs — the ambiguity.
  (void)*songs_t->AppendRow({Value::Int(0), Value::Str("Forgotten")});
  (void)*songs_t->AppendRow({Value::Int(1), Value::Str("Ember")});
  Table* albums_t = *db.FindMutableTable("Albums");
  // Nightfall albums on Hollow Note, Ashen Sky albums on Red Harbor.
  (void)*albums_t->AppendRow({Value::Int(0), Value::Str("Dusk"),
                              Value::Int(0), Value::Int(0)});
  (void)*albums_t->AppendRow({Value::Int(1), Value::Str("Dawn (live)"),
                              Value::Int(0), Value::Int(0)});
  (void)*albums_t->AppendRow({Value::Int(2), Value::Str("Cinders"),
                              Value::Int(1), Value::Int(1)});
  (void)*albums_t->AppendRow({Value::Int(3), Value::Str("Cinders (tour)"),
                              Value::Int(1), Value::Int(1)});
  Table* tracks_t = *db.FindMutableTable("Tracks");
  // Every Tracks row whose song title is "Forgotten" is one reference.
  const int64_t rows[][2] = {
      {0, 0},  // "Forgotten" on Dusk            (really Nightfall's song)
      {0, 1},  // "Forgotten" on Dawn (live)     (really Nightfall's song)
      {0, 2},  // "Forgotten" on Cinders         (really Ashen Sky's song)
      {0, 3},  // "Forgotten" on Cinders (tour)  (really Ashen Sky's song)
      {1, 0},  // Ember on Dusk
  };
  for (int64_t i = 0; i < 5; ++i) {
    (void)*tracks_t->AppendRow(
        {Value::Int(i), Value::Int(rows[i][0]), Value::Int(rows[i][1])});
  }
  DISTINCT_RETURN_IF_ERROR(db.ValidateIntegrity());
  return db;
}

}  // namespace

int main() {
  using namespace distinct;

  auto db = MakeMusicDatabase();
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  // References live in Tracks; their ambiguous names are song titles.
  ReferenceSpec spec;
  spec.reference_table = "Tracks";
  spec.identity_column = "song_id";
  spec.name_table = "Songs";
  spec.name_column = "title";

  DistinctConfig config;
  config.supervised = false;  // five tracks: demonstration, not training
  config.promotions = {{"Labels", "country"}};
  config.min_sim = 1e-3;

  auto engine = Distinct::Create(*db, spec, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("join paths from Tracks (%zu):\n", engine->paths().size());
  for (const JoinPath& path : engine->paths()) {
    std::printf("  %s\n", path.Describe(engine->schema_graph()).c_str());
  }

  auto result = engine->ResolveName("Forgotten");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n'Forgotten': %zu track references -> %d songs\n",
              result->refs.size(), result->clustering.num_clusters);

  std::vector<ReferenceDisplay> display(result->refs.size());
  const char* labels[] = {"on Dusk", "on Dawn (live)", "on Cinders",
                          "on Cinders (tour)"};
  const int truth[] = {0, 0, 1, 1};
  for (size_t i = 0; i < display.size(); ++i) {
    display[i].label = labels[i];
    display[i].truth = truth[i];
    display[i].predicted = result->clustering.assignment[i];
  }
  std::printf("%s", RenderClusterDiagram(
                        display,
                        {"Forgotten (Nightfall)", "Forgotten (Ashen Sky)"},
                        /*show_references=*/true)
                        .c_str());
  return 0;
}
