// Case study walk-through (the paper's Fig. 1 + Fig. 5 narrative): builds
// the miniature Wei Wang world by hand, shows join paths and neighbor
// profiles, then resolves the name and prints the grouping.

#include <cstdio>

#include "core/distinct.h"
#include "dblp/schema.h"
#include "eval/visualize.h"
#include "prop/propagation.h"

namespace {

using namespace distinct;

/// The mini bibliography: three papers by "Wei Wang", two of them by the
/// same person (linked through coauthor Jiong Yang), one by someone else.
Database MakeMiniWorld() {
  auto db = *MakeEmptyDblpDatabase();
  Table* authors = *db.FindMutableTable(kAuthorsTable);
  const char* names[] = {"Wei Wang", "Jiong Yang", "Jian Pei",
                         "Haixun Wang"};
  for (int64_t i = 0; i < 4; ++i) {
    (void)*authors->AppendRow({Value::Int(i), Value::Str(names[i])});
  }
  Table* conferences = *db.FindMutableTable(kConferencesTable);
  (void)*conferences->AppendRow(
      {Value::Int(0), Value::Str("VLDB"), Value::Str("Morgan Kaufmann")});
  (void)*conferences->AppendRow(
      {Value::Int(1), Value::Str("SIGMOD"), Value::Str("ACM")});
  (void)*conferences->AppendRow(
      {Value::Int(2), Value::Str("ICDE"), Value::Str("IEEE")});
  Table* proceedings = *db.FindMutableTable(kProceedingsTable);
  (void)*proceedings->AppendRow({Value::Int(0), Value::Int(0),
                                 Value::Int(1997), Value::Str("Athens")});
  (void)*proceedings->AppendRow({Value::Int(1), Value::Int(1),
                                 Value::Int(2002), Value::Str("Madison")});
  (void)*proceedings->AppendRow({Value::Int(2), Value::Int(2),
                                 Value::Int(2001), Value::Str("Heidelberg")});
  Table* publications = *db.FindMutableTable(kPublicationsTable);
  (void)*publications->AppendRow(
      {Value::Int(0), Value::Str("STING"), Value::Int(0)});
  (void)*publications->AppendRow(
      {Value::Int(1), Value::Str("Clustering by pattern similarity"),
       Value::Int(1)});
  (void)*publications->AppendRow(
      {Value::Int(2), Value::Str("Mining frequent patterns"),
       Value::Int(2)});
  Table* publish = *db.FindMutableTable(kPublishTable);
  const int64_t rows[][2] = {
      {0, 0}, {1, 0},          // STING: Wei Wang, Jiong Yang
      {0, 1}, {3, 1}, {1, 1},  // SIGMOD'02: Wei Wang, Haixun, Jiong
      {2, 2}, {0, 2},          // ICDE'01: Jian Pei, (another) Wei Wang
  };
  for (int64_t i = 0; i < 7; ++i) {
    (void)*publish->AppendRow(
        {Value::Int(i), Value::Int(rows[i][0]), Value::Int(rows[i][1])});
  }
  return db;
}

}  // namespace

int main() {
  using namespace distinct;

  Database db = MakeMiniWorld();
  std::printf("The mini world (paper Fig. 1 flavor):\n%s\n",
              db.DebugString().c_str());

  DistinctConfig config;
  config.supervised = false;  // 7 references: nothing to train on
  config.promotions = DblpDefaultPromotions();
  config.min_sim = 1e-3;
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("join paths from Publish (%zu):\n", engine->paths().size());
  for (const JoinPath& path : engine->paths()) {
    std::printf("  %s\n", path.Describe(engine->schema_graph()).c_str());
  }

  // Show one neighbor profile by hand: the coauthor-name path of ref 0.
  std::printf("\nresolving 'Wei Wang'...\n");
  auto result = engine->ResolveName("Wei Wang");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::vector<ReferenceDisplay> display(result->refs.size());
  const char* labels[] = {"STING @ VLDB 1997 (w/ Jiong Yang)",
                          "Clustering @ SIGMOD 2002 (w/ Haixun, Jiong)",
                          "Frequent patterns @ ICDE 2001 (w/ Jian Pei)"};
  const int truth[] = {0, 0, 1};  // refs 0,2 are UNC Wei Wang; ref 6 is not
  for (size_t i = 0; i < display.size(); ++i) {
    display[i].label = labels[i];
    display[i].truth = truth[i];
    display[i].predicted = result->clustering.assignment[i];
  }
  std::printf("%s\n",
              RenderClusterDiagram(display,
                                   {"Wei Wang @ UNC", "Wei Wang @ UNSW"},
                                   /*show_references=*/true)
                  .c_str());
  return 0;
}
