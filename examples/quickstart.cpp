// Quickstart: generate a synthetic DBLP database, train DISTINCT, and
// resolve one ambiguous name.
//
//   ./build/examples/quickstart [--name="Wei Wang"] [--seed=42]

#include <cstdio>

#include "common/flags.h"
#include "core/distinct.h"
#include "dblp/generator.h"
#include "dblp/schema.h"
#include "dblp/stats.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace distinct;

  FlagParser flags;
  flags.AddString("name", "Wei Wang", "ambiguous name to resolve");
  flags.AddInt64("seed", 42, "generator seed");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  // 1. Data: a bibliography with planted ambiguous names (stands in for the
  //    real DBLP dump; see DESIGN.md).
  GeneratorConfig gen_config;
  gen_config.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto dataset = GenerateDblpDataset(gen_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  auto stats = ComputeDblpStats(dataset->db);
  std::printf("generated database: %s\n", stats->DebugString().c_str());

  // 2. Train: automatic training set -> SVM path weights.
  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  auto engine = Distinct::Create(dataset->db, DblpReferenceSpec(), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "train: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  const TrainingReport& report = engine->report();
  std::printf(
      "trained on %zu pairs over %d join paths in %.2fs "
      "(features %.2fs, SVM %.2fs)\n",
      report.num_training_pairs, report.num_paths, report.seconds_total,
      report.seconds_features, report.seconds_svm);

  // 3. Resolve one name.
  const std::string name = flags.GetString("name");
  auto result = engine->ResolveName(name);
  if (!result.ok()) {
    std::fprintf(stderr, "resolve: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("'%s': %zu references -> %d groups\n", name.c_str(),
              result->refs.size(), result->clustering.num_clusters);

  // 4. Score against ground truth when the name is a planted case.
  for (const AmbiguousCase& c : dataset->cases) {
    if (c.name != name) {
      continue;
    }
    // Align the generator's truth with the resolved reference order.
    std::vector<int> truth;
    for (const int32_t ref : result->refs) {
      for (size_t i = 0; i < c.publish_rows.size(); ++i) {
        if (c.publish_rows[i] == ref) {
          truth.push_back(c.truth[i]);
          break;
        }
      }
    }
    const PairwiseScores scores =
        PairwisePrecisionRecall(truth, result->clustering.assignment);
    std::printf("ground truth: %d real people; %s\n", c.num_entities,
                scores.DebugString().c_str());
  }
  return 0;
}
