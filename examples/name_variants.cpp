// Resolving across spelling variants: the catalog contains "Wei Wang",
// "Wei  Wang" and "WEI WANG" as separate name entries. Q-gram blocking
// (block/name_blocking.h) finds the variant group; DISTINCT then splits
// the union of the group's references by real person — combining the
// candidate-generation layer of classic record linkage with the paper's
// object-distinction layer.

#include <cstdio>

#include "block/name_blocking.h"
#include "core/distinct.h"
#include "dblp/schema.h"

namespace {

using namespace distinct;

/// A tiny world: two real people, three spellings of their shared name.
Database MakeVariantWorld() {
  auto db = *MakeEmptyDblpDatabase();
  Table* authors = *db.FindMutableTable(kAuthorsTable);
  const char* names[] = {"Wei Wang",  "Wei  Wang", "WEI WANG",
                         "Jiong Yang", "Jian Pei"};
  for (int64_t i = 0; i < 5; ++i) {
    (void)*authors->AppendRow({Value::Int(i), Value::Str(names[i])});
  }
  Table* conferences = *db.FindMutableTable(kConferencesTable);
  (void)*conferences->AppendRow(
      {Value::Int(0), Value::Str("VLDB"), Value::Str("MK")});
  (void)*conferences->AppendRow(
      {Value::Int(1), Value::Str("ICDE"), Value::Str("IEEE")});
  Table* proceedings = *db.FindMutableTable(kProceedingsTable);
  (void)*proceedings->AppendRow(
      {Value::Int(0), Value::Int(0), Value::Int(1997), Value::Str("Athens")});
  (void)*proceedings->AppendRow(
      {Value::Int(1), Value::Int(1), Value::Int(2001), Value::Str("Rome")});
  Table* publications = *db.FindMutableTable(kPublicationsTable);
  for (int64_t p = 0; p < 4; ++p) {
    (void)*publications->AppendRow(
        {Value::Int(p), Value::Str("Paper " + std::to_string(p)),
         Value::Int(p % 2)});
  }
  // Person A (the UNC Wei Wang) publishes with Jiong Yang under two
  // spellings; person B (the UNSW one) with Jian Pei under a third.
  Table* publish = *db.FindMutableTable(kPublishTable);
  const int64_t rows[][2] = {
      {0, 0}, {3, 0},  // "Wei Wang"  + Jiong Yang   -> person A
      {1, 2}, {3, 2},  // "Wei  Wang" + Jiong Yang   -> person A
      {2, 1}, {4, 1},  // "WEI WANG"  + Jian Pei     -> person B
      {2, 3}, {4, 3},  // "WEI WANG"  + Jian Pei     -> person B
  };
  for (int64_t i = 0; i < 8; ++i) {
    (void)*publish->AppendRow(
        {Value::Int(i), Value::Int(rows[i][0]), Value::Int(rows[i][1])});
  }
  return db;
}

}  // namespace

int main() {
  using namespace distinct;

  Database db = MakeVariantWorld();

  // 1. Blocking: which name entries are spelling variants of each other?
  auto blocks = BlockSimilarNames(db, DblpReferenceSpec());
  if (!blocks.ok()) {
    std::fprintf(stderr, "%s\n", blocks.status().ToString().c_str());
    return 1;
  }
  std::printf("found %zu variant block(s)\n", blocks->size());
  for (const NameBlock& block : *blocks) {
    std::printf("  block:");
    for (const std::string& name : block.names) {
      std::printf(" '%s'", name.c_str());
    }
    std::printf("\n");
  }
  if (blocks->empty()) {
    return 0;
  }

  // 2. Collect the union of the block's references.
  DistinctConfig config;
  config.supervised = false;  // eight references: demonstration scale
  config.min_sim = 1e-3;
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::vector<int32_t> refs;
  for (const std::string& name : blocks->front().names) {
    auto name_refs = engine->RefsForName(name);
    if (name_refs.ok()) {
      refs.insert(refs.end(), name_refs->begin(), name_refs->end());
    }
  }
  std::printf("\nblock has %zu references across all spellings\n",
              refs.size());

  // 3. DISTINCT splits the union by real person.
  auto clustering = engine->ResolveRefs(refs);
  if (!clustering.ok()) {
    std::fprintf(stderr, "%s\n", clustering.status().ToString().c_str());
    return 1;
  }
  std::printf("DISTINCT groups them into %d people:\n",
              clustering->num_clusters);
  const Table& publish = **db.FindTable(kPublishTable);
  const Table& authors = **db.FindTable(kAuthorsTable);
  for (size_t i = 0; i < refs.size(); ++i) {
    const int64_t author_row =
        *authors.RowForPrimaryKey(publish.GetInt(refs[i], 1));
    std::printf("  ref %d (spelled '%s', paper %lld) -> person %d\n",
                refs[i], authors.GetString(author_row, 1).c_str(),
                static_cast<long long>(publish.GetInt(refs[i], 2)),
                clustering->assignment[i]);
  }
  return 0;
}
